"""Density-based pruning (Algorithm 4 and Definitions 3-5), batched.

Hierarchical merging only ever looks at the two tables currently being
merged, so a tuple built up over several levels can drag along an outlier
(Figure 4). The pruning stage classifies each tuple's members as core,
reachable, or outlier entities using DBSCAN-style density rules and removes
the outliers; tuples left with fewer than two members are dropped entirely.

Vectorized layout and byte-identity contract
--------------------------------------------

:func:`classify_entities` remains the single-tuple reference implementation;
the production path (:func:`prune_items` / :func:`prune_item_table`) batches
every candidate's members into one contiguous matrix, buckets candidates by
member count ``u``, and classifies each bucket with one
:func:`~repro.ann.distances.batched_pairwise_distances` call and boolean
masks — no per-tuple Python loop. Because every batched slice is bit-equal
to the per-tuple kernel (see the batched kernel's docstring), the surviving
member sets, the rebuilt representative vectors, and even object identity
for untouched tuples are identical to the historical per-item path —
``tests/core/test_flat_equivalence.py`` pins this on randomized inputs, and
the result is independent of how candidates are chunked across workers.

``PruningConfig.batch_rows`` caps how many member rows one *classification
block* gathers, bounding the per-block ``(t, u, u)`` distance allocations for
large candidate sets. It is not a global memory bound: the flat member matrix
of a chunk is gathered up front, and a single tuple with more than
``batch_rows`` members still classifies as one (1, u, u) block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..ann.distances import batched_pairwise_distances, pairwise_distances
from ..arrays import csr_positions
from ..config import PruningConfig
from ..data.entity import EntityRef
from .merging import ItemTable, MergeItem, bucketed_weighted_mean, weighted_mean_vector
from .parallel import ParallelExecutor, partition
from .representation import EmbeddingStore


@dataclass
class EntityClassification:
    """Outcome of Algorithm 4 for one data item (indices into the item's members)."""

    core: list[int] = field(default_factory=list)
    reachable: list[int] = field(default_factory=list)
    outliers: list[int] = field(default_factory=list)


def classify_entities(
    vectors: np.ndarray, epsilon: float, min_pts: int, metric: str = "euclidean"
) -> EntityClassification:
    """Classify the members of one data item (Algorithm 4).

    This is the single-tuple reference implementation; the batched path in
    :func:`prune_items` reproduces it bit for bit via boolean masks.

    Args:
        vectors: ``(u, d)`` member embeddings of the data item.
        epsilon: neighbourhood radius ε.
        min_pts: neighbours (including self) required to be a core entity.
        metric: distance metric (the paper uses euclidean here).

    Returns:
        :class:`EntityClassification` of member indices.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    u = vectors.shape[0]
    if u == 0:
        return EntityClassification()
    distances = pairwise_distances(vectors, metric)
    neighbor_masks = distances <= epsilon
    neighbor_counts = neighbor_masks.sum(axis=1)
    core = [i for i in range(u) if neighbor_counts[i] >= min_pts]
    core_set = set(core)
    classification = EntityClassification(core=core)
    for i in range(u):
        if i in core_set:
            continue
        neighbors = np.flatnonzero(neighbor_masks[i])
        if any(int(j) in core_set for j in neighbors if int(j) != i):
            classification.reachable.append(i)
        else:
            classification.outliers.append(i)
    return classification


def _classify_members(
    member_matrix: np.ndarray, offsets: np.ndarray, config: PruningConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Algorithm 4 over the flat member matrix of many candidates.

    Args:
        member_matrix: ``(M, d)`` concatenated member vectors of all candidates.
        offsets: ``(C + 1,)`` CSR offsets; candidate ``i`` owns rows
            ``offsets[i]:offsets[i + 1]``.
        config: pruning settings (``batch_rows`` bounds one block's gather).

    Returns:
        ``(keep, keep_counts)`` — a boolean mask over the ``M`` member rows
        (core or reachable members) and the per-candidate survivor counts.
    """
    sizes = np.diff(offsets)
    keep = np.zeros(member_matrix.shape[0], dtype=bool)
    keep_counts = np.zeros(len(sizes), dtype=np.int64)
    for u in np.unique(sizes):
        u = int(u)
        if u == 0:
            continue
        items_u = np.flatnonzero(sizes == u)
        block_items = max(1, int(config.batch_rows) // u)
        for start in range(0, len(items_u), block_items):
            block = items_u[start : start + block_items]
            flat_positions = (offsets[block][:, None] + np.arange(u)[None, :]).reshape(-1)
            stacked = np.asarray(member_matrix[flat_positions], dtype=np.float32)
            stacked = stacked.reshape(len(block), u, member_matrix.shape[1])
            distances = batched_pairwise_distances(stacked, config.metric)
            neighbor_masks = distances <= config.epsilon
            core = neighbor_masks.sum(axis=2) >= config.min_pts
            reachable = ~core & (neighbor_masks & core[:, None, :]).any(axis=2)
            keep_block = core | reachable
            keep[flat_positions] = keep_block.reshape(-1)
            keep_counts[block] = keep_block.sum(axis=1)
    return keep, keep_counts


def _rebuild_vectors(
    member_matrix: np.ndarray, kept_positions: list[np.ndarray]
) -> list[np.ndarray]:
    """Weighted-mean representatives for partially pruned candidates, batched.

    Reproduces ``weighted_mean_vector(survivors, ones)`` per candidate bit for
    bit: candidates are bucketed by survivor count and each bucket reduces
    through :func:`~repro.core.merging.bucketed_weighted_mean` (unit weights),
    the shared kernel that carries the byte-identity argument.
    """
    vectors: list[np.ndarray | None] = [None] * len(kept_positions)
    if not kept_positions:
        return []
    counts = np.fromiter((len(p) for p in kept_positions), dtype=np.int64, count=len(kept_positions))
    for s in np.unique(counts):
        s = int(s)
        bucket = np.flatnonzero(counts == s)
        positions = np.concatenate([kept_positions[i] for i in bucket])
        stacked = member_matrix[positions].reshape(len(bucket), s, member_matrix.shape[1])
        weights = np.ones((len(bucket), s), dtype=np.float32)
        normalized = bucketed_weighted_mean(stacked, weights)
        for row, i in enumerate(bucket):
            vectors[i] = normalized[row].astype(np.float32)
    return vectors  # type: ignore[return-value]


def prune_item(
    item: MergeItem,
    embedding_lookup: Mapping[EntityRef, np.ndarray],
    config: PruningConfig,
) -> MergeItem | None:
    """Prune one candidate tuple; return ``None`` if fewer than 2 members survive.

    Single-tuple reference path (the batched pipeline reproduces it exactly).
    """
    if item.size < 2:
        return None
    vectors = np.stack([embedding_lookup[ref] for ref in item.members])
    classification = classify_entities(vectors, config.epsilon, config.min_pts, config.metric)
    keep_indices = sorted(classification.core + classification.reachable)
    if len(keep_indices) < 2:
        return None
    if len(keep_indices) == item.size:
        return item
    members = tuple(item.members[i] for i in keep_indices)
    # Same member-count-weighted representative the merging stage computes
    # (each survivor is one entity, weight 1), so pruned items feed later
    # incremental merges with a consistent vector.
    survivors = vectors[keep_indices]
    vector = weighted_mean_vector(survivors, np.ones(len(keep_indices), dtype=np.float32))
    return MergeItem(members=members, vector=vector.astype(np.float32))


def _assemble_survivors(
    candidates: list[MergeItem],
    member_matrix: np.ndarray,
    offsets: np.ndarray,
    config: PruningConfig,
    kept_rows: list[int] | None = None,
) -> list[MergeItem]:
    """Classify a gathered candidate chunk and build its surviving items.

    When ``kept_rows`` is given, the chunk-local index of every surviving
    candidate is appended to it (survivor-aligned) — the owner-grouped
    sharded path uses this to stitch per-group survivor lists back into the
    original candidate order.
    """
    keep, keep_counts = _classify_members(member_matrix, offsets, config)
    survivors: list[MergeItem] = []
    partial_slots: list[int] = []
    partial_members: list[tuple[EntityRef, ...]] = []
    partial_positions: list[np.ndarray] = []
    for i, item in enumerate(candidates):
        count = int(keep_counts[i])
        if count < 2:
            continue
        if kept_rows is not None:
            kept_rows.append(i)
        if count == item.size:
            survivors.append(item)  # untouched tuples keep their identity
            continue
        start = int(offsets[i])
        kept_local = np.flatnonzero(keep[start : int(offsets[i + 1])])
        partial_slots.append(len(survivors))
        partial_members.append(tuple(item.members[j] for j in kept_local.tolist()))
        partial_positions.append(start + kept_local)
        survivors.append(item)  # placeholder, replaced below
    rebuilt = _rebuild_vectors(member_matrix, partial_positions)
    for slot, members, vector in zip(partial_slots, partial_members, rebuilt):
        survivors[slot] = MergeItem(members=members, vector=vector)
    return survivors


def _gather_chunk(
    chunk: list[MergeItem],
    embedding_lookup: Mapping[EntityRef, np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Flat member matrix + CSR offsets for one candidate chunk."""
    sizes = np.fromiter((item.size for item in chunk), dtype=np.int64, count=len(chunk))
    offsets = np.zeros(len(chunk) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    members = [ref for item in chunk for ref in item.members]
    if isinstance(embedding_lookup, EmbeddingStore):
        member_matrix = embedding_lookup.matrix[embedding_lookup.rows(members)]
    else:
        member_matrix = np.stack([embedding_lookup[ref] for ref in members])
    return member_matrix, offsets


def _prune_chunk(
    chunk: list[MergeItem],
    embedding_lookup: Mapping[EntityRef, np.ndarray],
    config: PruningConfig,
) -> list[MergeItem]:
    """Batched pruning of one chunk of candidate items."""
    if not chunk:
        return []
    member_matrix, offsets = _gather_chunk(chunk, embedding_lookup)
    return _assemble_survivors(chunk, member_matrix, offsets, config)


def _prune_payload_task(payload: tuple) -> list[MergeItem]:
    """Classify one pre-gathered candidate chunk (process-pool task).

    The parent gathers each chunk's member matrix (cheap fancy indexing) and
    ships ``(items, matrix, offsets, config)``; workers run the O(u²)
    classification. Module-level so the process backend can pickle it;
    results are bit-identical to the in-process chunk path (chunking never
    changes a tuple's arithmetic).
    """
    chunk, member_matrix, offsets, config = payload
    return _assemble_survivors(chunk, member_matrix, offsets, config)


def _prune_payload_shm_task(task: tuple) -> list[MergeItem]:
    """Classify one candidate chunk whose arrays live in a shared-memory plane.

    The heavy payload — the gathered member matrix — is read as a zero-copy
    view over the parent's request plane; only the (small) chunk item list
    and config ride the pickle pipe. Classification math is byte-identical
    to :func:`_prune_payload_task` on the same bytes, and the returned
    survivors never alias the plane (rebuilt vectors are fresh arrays,
    untouched tuples keep the pickled chunk's own vectors).
    """
    from ..store import plane as plane_mod

    plane_name, index, chunk, config = task
    plane = plane_mod.worker_plane(plane_name)
    member_matrix = plane.array(f"t{index}/member_matrix")
    offsets = plane.array(f"t{index}/offsets")
    return _assemble_survivors(chunk, member_matrix, offsets, config)


def _map_prune_payloads(executor: ParallelExecutor, payloads: list[tuple]) -> list[list[MergeItem]]:
    """Dispatch ``(chunk, matrix, offsets, config)`` payloads to process workers.

    Shared-memory mode ships each payload's arrays through one
    :class:`repro.store.plane.TaskPlane` per call and sends descriptors;
    otherwise the whole payload is pickled. Output is identical either way.
    """
    if executor.uses_shared_memory and len(payloads) > 1:
        from ..store import plane as plane_mod

        plane = plane_mod.TaskPlane(
            [{"member_matrix": matrix, "offsets": offsets} for _, matrix, offsets, _ in payloads]
        )
        try:
            return executor.map(
                _prune_payload_shm_task,
                [
                    (plane.name, i, chunk, config)
                    for i, (chunk, _, _, config) in enumerate(payloads)
                ],
            )
        finally:
            plane.close()
    return executor.map(_prune_payload_task, payloads)


def _prune_rows_payload_task(payload: tuple) -> tuple[np.ndarray, list[MergeItem]]:
    """Classify one owner group's pre-gathered candidates (process-pool task).

    Like :func:`_prune_payload_task` but for an *arbitrary* candidate row set
    (an owner group rather than a contiguous range): returns the surviving
    global candidate rows alongside the survivors so the parent can stitch
    groups back into the original candidate order.
    """
    chunk, member_matrix, offsets, config, group_rows = payload
    kept: list[int] = []
    survivors = _assemble_survivors(chunk, member_matrix, offsets, config, kept_rows=kept)
    return group_rows[np.asarray(kept, dtype=np.int64)], survivors


def _prune_rows_payload_shm_task(task: tuple) -> tuple[np.ndarray, list[MergeItem]]:
    """Shared-memory counterpart of :func:`_prune_rows_payload_task`."""
    from ..store import plane as plane_mod

    plane_name, index, chunk, config, group_rows = task
    plane = plane_mod.worker_plane(plane_name)
    member_matrix = plane.array(f"t{index}/member_matrix")
    offsets = plane.array(f"t{index}/offsets")
    kept: list[int] = []
    survivors = _assemble_survivors(chunk, member_matrix, offsets, config, kept_rows=kept)
    return group_rows[np.asarray(kept, dtype=np.int64)], survivors


def _map_prune_rows_payloads(
    executor: ParallelExecutor, payloads: list[tuple]
) -> list[tuple[np.ndarray, list[MergeItem]]]:
    """Dispatch owner-group payloads to process workers (shm plane when on)."""
    if executor.uses_shared_memory and len(payloads) > 1:
        from ..store import plane as plane_mod

        plane = plane_mod.TaskPlane(
            [
                {"member_matrix": matrix, "offsets": offsets}
                for _, matrix, offsets, _, _ in payloads
            ]
        )
        try:
            return executor.map(
                _prune_rows_payload_shm_task,
                [
                    (plane.name, i, chunk, config, group_rows)
                    for i, (chunk, _, _, config, group_rows) in enumerate(payloads)
                ],
            )
        finally:
            plane.close()
    return executor.map(_prune_rows_payload_task, payloads)


def prune_items(
    items: list[MergeItem],
    embedding_lookup: Mapping[EntityRef, np.ndarray],
    config: PruningConfig,
    *,
    executor: ParallelExecutor | None = None,
) -> list[MergeItem]:
    """Prune every candidate tuple, optionally in parallel over partitions.

    Only items with >= 2 members are considered (singletons are not
    predictions); the survivors keep their original relative order, untouched
    tuples keep their object identity, and the output is byte-identical
    regardless of worker count (chunking never changes a slice's arithmetic).
    """
    executor = executor or ParallelExecutor()
    candidates = [item for item in items if item.size >= 2]
    if not config.enabled:
        return candidates
    if not candidates:
        return []
    if executor.is_parallel:
        workers = executor.config.max_workers or 4
        chunks = partition(candidates, max(workers, 1) * 2)
        if executor.uses_processes:
            payloads = [
                (chunk, *_gather_chunk(chunk, embedding_lookup), config) for chunk in chunks
            ]
            results = _map_prune_payloads(executor, payloads)
        else:
            results = executor.map(
                lambda chunk: _prune_chunk(chunk, embedding_lookup, config), chunks
            )
        return [item for chunk_result in results for item in chunk_result]
    return _prune_chunk(candidates, embedding_lookup, config)


def prune_item_table(
    table: ItemTable,
    store: EmbeddingStore,
    config: PruningConfig,
    *,
    executor: ParallelExecutor | None = None,
    owners: np.ndarray | None = None,
) -> list[MergeItem]:
    """Prune candidates straight off a flat :class:`~repro.core.merging.ItemTable`.

    The pipeline fast path: member *row resolution* runs through
    :meth:`EmbeddingStore.member_rows` as pure integer arithmetic (the dict
    lookup the historical path did per member). Candidate ``EntityRef`` /
    :class:`MergeItem` objects are still materialized — candidates are a small
    fraction of the table — and the surviving tuples come back as item views.
    Survivor member sets are identical to
    ``prune_items(candidate_tuples(table), store, config)``.

    ``owners`` (a per-item ``int32`` array from the sharded merge plane)
    switches chunking from contiguous ranges to owner groups, so each shard's
    candidates classify together; survivors are stitched back into original
    candidate order, and since classification is chunk-invariant (pinned by
    the flat-equivalence tests) the output is byte-identical to the
    unsharded call.
    """
    executor = executor or ParallelExecutor()
    candidates = table.filter(table.sizes >= 2)
    if not config.enabled:
        return candidates.to_items()
    if len(candidates) == 0:
        return []
    rows = store.member_rows(candidates.sources, candidates.member_sources, candidates.member_indices)
    refs = candidates.member_refs()
    if owners is not None:
        candidate_owners = np.asarray(owners, dtype=np.int32)[
            np.asarray(table.sizes >= 2, dtype=bool)
        ]
        groups = [
            np.flatnonzero(candidate_owners == owner).astype(np.int64)
            for owner in np.unique(candidate_owners)
        ]
        if executor.uses_processes:
            payloads = [
                (*_table_rows_payload(candidates, store, rows, refs, g), config, g)
                for g in groups
            ]
            mapped_rows = _map_prune_rows_payloads(executor, payloads)
        else:
            mapped_rows = executor.map(
                lambda g: _prune_table_rows(candidates, store, rows, refs, g, config),
                groups,
            )
        tagged: list[tuple[int, MergeItem]] = []
        for kept_rows, survivors in mapped_rows:
            tagged.extend(zip(kept_rows.tolist(), survivors))
        tagged.sort(key=lambda pair: pair[0])
        return [item for _, item in tagged]
    if executor.is_parallel:
        workers = executor.config.max_workers or 4
        bounds = _chunk_bounds(len(candidates), max(workers, 1) * 2)
    else:
        bounds = [(0, len(candidates))]
    if executor.uses_processes:
        payloads = [
            (*_table_chunk_payload(candidates, store, rows, refs, b), config) for b in bounds
        ]
        mapped = _map_prune_payloads(executor, payloads)
    else:
        mapped = executor.map(
            lambda chunk_bounds: _prune_table_chunk(
                candidates, store, rows, refs, chunk_bounds, config
            ),
            bounds,
        )
    return [item for chunk_result in mapped for item in chunk_result]


def _chunk_bounds(num_items: int, num_parts: int) -> list[tuple[int, int]]:
    """Contiguous (first, last) item ranges, delegating to :func:`partition`.

    Reusing the same splitter keeps the flat-table path's chunking in lockstep
    with the list path's, which the serial == parallel equivalence tests pin.
    """
    return [(chunk[0], chunk[-1] + 1) for chunk in partition(range(num_items), num_parts)]


def _table_chunk_payload(
    candidates: ItemTable,
    store: EmbeddingStore,
    rows: np.ndarray,
    refs: list[EntityRef],
    bounds: tuple[int, int],
) -> tuple[list[MergeItem], np.ndarray, np.ndarray]:
    """Materialize one contiguous candidate range ``[first, last)`` for pruning."""
    first, last = bounds
    lo, hi = int(candidates.member_offsets[first]), int(candidates.member_offsets[last])
    chunk_offsets = candidates.member_offsets[first : last + 1] - lo
    member_matrix = store.matrix[rows[lo:hi]]
    chunk_items = [
        MergeItem(members=tuple(refs[lo + o0 : lo + o1]), vector=candidates.vectors[first + i])
        for i, (o0, o1) in enumerate(zip(chunk_offsets[:-1].tolist(), chunk_offsets[1:].tolist()))
    ]
    return chunk_items, member_matrix, chunk_offsets


def _table_rows_payload(
    candidates: ItemTable,
    store: EmbeddingStore,
    rows: np.ndarray,
    refs: list[EntityRef],
    group_rows: np.ndarray,
) -> tuple[list[MergeItem], np.ndarray, np.ndarray]:
    """Materialize an arbitrary candidate row set (one owner group) for pruning."""
    counts = candidates.sizes[group_rows]
    chunk_offsets = np.zeros(len(group_rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=chunk_offsets[1:])
    positions = csr_positions(candidates.member_offsets[group_rows], counts)
    member_matrix = store.matrix[rows[positions]]
    starts = candidates.member_offsets[group_rows].tolist()
    chunk_items = [
        MergeItem(
            members=tuple(refs[start : start + int(count)]),
            vector=candidates.vectors[int(row)],
        )
        for row, start, count in zip(group_rows.tolist(), starts, counts.tolist())
    ]
    return chunk_items, member_matrix, chunk_offsets


def _prune_table_rows(
    candidates: ItemTable,
    store: EmbeddingStore,
    rows: np.ndarray,
    refs: list[EntityRef],
    group_rows: np.ndarray,
    config: PruningConfig,
) -> tuple[np.ndarray, list[MergeItem]]:
    """Prune one owner group's candidate rows in-parent; returns (kept rows, survivors)."""
    chunk_items, member_matrix, chunk_offsets = _table_rows_payload(
        candidates, store, rows, refs, group_rows
    )
    kept: list[int] = []
    survivors = _assemble_survivors(chunk_items, member_matrix, chunk_offsets, config, kept_rows=kept)
    return group_rows[np.asarray(kept, dtype=np.int64)], survivors


def _prune_table_chunk(
    candidates: ItemTable,
    store: EmbeddingStore,
    rows: np.ndarray,
    refs: list[EntityRef],
    bounds: tuple[int, int],
    config: PruningConfig,
) -> list[MergeItem]:
    """Prune one contiguous candidate range ``[first, last)`` of the flat table."""
    chunk_items, member_matrix, chunk_offsets = _table_chunk_payload(
        candidates, store, rows, refs, bounds
    )
    return _assemble_survivors(chunk_items, member_matrix, chunk_offsets, config)
