"""Density-based pruning (Algorithm 4 and Definitions 3-5).

Hierarchical merging only ever looks at the two tables currently being
merged, so a tuple built up over several levels can drag along an outlier
(Figure 4). The pruning stage classifies each tuple's members as core,
reachable, or outlier entities using DBSCAN-style density rules and removes
the outliers; tuples left with fewer than two members are dropped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ann.distances import pairwise_distances
from ..config import PruningConfig
from ..data.entity import EntityRef
from .merging import MergeItem, weighted_mean_vector
from .parallel import ParallelExecutor, partition


@dataclass
class EntityClassification:
    """Outcome of Algorithm 4 for one data item (indices into the item's members)."""

    core: list[int] = field(default_factory=list)
    reachable: list[int] = field(default_factory=list)
    outliers: list[int] = field(default_factory=list)


def classify_entities(
    vectors: np.ndarray, epsilon: float, min_pts: int, metric: str = "euclidean"
) -> EntityClassification:
    """Classify the members of one data item (Algorithm 4).

    Args:
        vectors: ``(u, d)`` member embeddings of the data item.
        epsilon: neighbourhood radius ε.
        min_pts: neighbours (including self) required to be a core entity.
        metric: distance metric (the paper uses euclidean here).

    Returns:
        :class:`EntityClassification` of member indices.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    u = vectors.shape[0]
    if u == 0:
        return EntityClassification()
    distances = pairwise_distances(vectors, metric)
    neighbor_masks = distances <= epsilon
    neighbor_counts = neighbor_masks.sum(axis=1)
    core = [i for i in range(u) if neighbor_counts[i] >= min_pts]
    core_set = set(core)
    classification = EntityClassification(core=core)
    for i in range(u):
        if i in core_set:
            continue
        neighbors = np.flatnonzero(neighbor_masks[i])
        if any(int(j) in core_set for j in neighbors if int(j) != i):
            classification.reachable.append(i)
        else:
            classification.outliers.append(i)
    return classification


def prune_item(
    item: MergeItem,
    embedding_lookup: dict[EntityRef, np.ndarray],
    config: PruningConfig,
) -> MergeItem | None:
    """Prune one candidate tuple; return ``None`` if fewer than 2 members survive."""
    if item.size < 2:
        return None
    vectors = np.stack([embedding_lookup[ref] for ref in item.members])
    classification = classify_entities(vectors, config.epsilon, config.min_pts, config.metric)
    keep_indices = sorted(classification.core + classification.reachable)
    if len(keep_indices) < 2:
        return None
    if len(keep_indices) == item.size:
        return item
    members = tuple(item.members[i] for i in keep_indices)
    # Same member-count-weighted representative the merging stage computes
    # (each survivor is one entity, weight 1), so pruned items feed later
    # incremental merges with a consistent vector.
    survivors = vectors[keep_indices]
    vector = weighted_mean_vector(survivors, np.ones(len(keep_indices), dtype=np.float32))
    return MergeItem(members=members, vector=vector.astype(np.float32))


def prune_items(
    items: list[MergeItem],
    embedding_lookup: dict[EntityRef, np.ndarray],
    config: PruningConfig,
    *,
    executor: ParallelExecutor | None = None,
) -> list[MergeItem]:
    """Prune every candidate tuple, optionally in parallel over partitions.

    Only items with >= 2 members are considered (singletons are not
    predictions); the survivors keep their original relative order.
    """
    executor = executor or ParallelExecutor()
    candidates = [item for item in items if item.size >= 2]
    if not config.enabled:
        return candidates
    if not candidates:
        return []

    def prune_chunk(chunk: list[MergeItem]) -> list[MergeItem]:
        survivors: list[MergeItem] = []
        for item in chunk:
            pruned = prune_item(item, embedding_lookup, config)
            if pruned is not None:
                survivors.append(pruned)
        return survivors

    if executor.is_parallel:
        workers = executor.config.max_workers or 4
        chunks = partition(candidates, max(workers, 1) * 2)
        results = executor.map(prune_chunk, chunks)
        return [item for chunk_result in results for item in chunk_result]
    return prune_chunk(candidates)
