"""Incremental multi-table matching: fold new source tables into an existing result.

The paper's conclusion lists scaling the merging to ever-larger data as future
work; the most common practical variant is *incremental* arrival — a new
marketplace feed shows up after the catalogue has already been integrated.
Re-running the whole hierarchy is wasteful: merging the new table into the
existing integrated table is a single two-table merge plus a pruning pass,
exactly the primitives Algorithms 3 and 4 already provide.

Usage::

    matcher = IncrementalMultiEM(paper_default_config("music-20"))
    matcher.fit(initial_dataset)              # full hierarchical run
    result = matcher.add_table(new_table)     # one two-table merge + pruning
"""

from __future__ import annotations

import numpy as np

from ..ann.cache import IndexCache
from ..config import MultiEMConfig
from ..data.dataset import MultiTableDataset
from ..data.table import Table
from ..exceptions import DataError, SchemaError
from .attribute_selection import select_attributes
from .merging import ItemTable, hierarchical_merge_tables, merge_item_tables
from .parallel import ParallelExecutor
from .pruning import prune_item_table
from .representation import EmbeddingStore, EntityRepresenter
from .result import MatchResult, StageTimings


class IncrementalMultiEM:
    """MultiEM variant that supports adding source tables one at a time.

    State lives in flat form: one :class:`~repro.core.merging.ItemTable` for
    the integrated table and one
    :class:`~repro.core.representation.EmbeddingStore` for the encoded rows,
    so repeated ``add_table`` calls never rebuild per-item Python objects.
    """

    def __init__(self, config: MultiEMConfig | None = None) -> None:
        self.config = config or MultiEMConfig()
        self.config.validate()
        self._representer: EntityRepresenter | None = None
        self._attributes: tuple[str, ...] = ()
        self._table: ItemTable = ItemTable.empty()
        # Per-item shard owner ids when the merging config is sharded
        # (``MergingConfig.shards > 1``); None for the classic single-shard
        # path. Carried through add_table merges and snapshotted.
        self._item_owners: np.ndarray | None = None
        self._store: EmbeddingStore = EmbeddingStore()
        self._known_sources: set[str] = set()
        self._schema: tuple[str, ...] = ()
        self._executor = ParallelExecutor(self.config.parallel)
        # A persistent cache makes repeated add_table() calls reuse the index
        # over the integrated table whenever it was carried forward unchanged
        # (or merely appended to) by the previous merge.
        self._index_cache: IndexCache | None = (
            IndexCache(max_entries=self.config.merging.index_cache_entries)
            if self.config.merging.index_cache
            else None
        )
        # On-disk base of the last save/load (path, payload digest, depth,
        # session meta, captured array references) — what makes save() emit
        # an append-only delta instead of a full rewrite. Maintained by
        # repro.store.session; None until the first full save (or load).
        self._base: dict | None = None

    # ------------------------------------------------------------------- fit
    @property
    def is_fitted(self) -> bool:
        return self._representer is not None

    def fit(self, dataset: MultiTableDataset) -> MatchResult:
        """Run the full pipeline on the initial dataset and keep its state."""
        self._base = None  # a refit starts a new snapshot lineage
        self._schema = dataset.schema
        self._representer = EntityRepresenter(self.config.representation)
        if self.config.representation.attribute_selection and len(self._schema) > 1:
            selection = select_attributes(dataset, self._representer, self.config.representation)
            self._attributes = selection.selected
        else:
            self._attributes = self._schema
        self._representer.fit(dataset, self._attributes)
        embeddings = self._representer.encode_dataset(dataset, self._attributes)
        self._store = EmbeddingStore.from_embeddings(embeddings)
        item_tables = [ItemTable.from_embeddings(embeddings[t.name]) for t in dataset.table_list()]
        if self.config.merging.shards > 1:
            from ..shard import build_shard_plan, sharded_hierarchical_merge

            plan = build_shard_plan(
                self.config.merging,
                item_tables=item_tables,
                raw_tables=dataset.table_list(),
                attributes=self._attributes,
            )
            integrated, _, self._item_owners = sharded_hierarchical_merge(
                item_tables,
                plan.owners,
                self.config.merging,
                executor=self._executor,
                cache=self._index_cache,
            )
        else:
            self._item_owners = None
            integrated, _ = hierarchical_merge_tables(
                item_tables,
                self.config.merging,
                executor=self._executor,
                cache=self._index_cache,
            )
        self._table = integrated
        self._known_sources = set(dataset.tables)
        return self._result()

    # ------------------------------------------------------------ add_table
    def add_table(self, table: Table) -> MatchResult:
        """Merge one new source table into the existing integrated state."""
        if not self.is_fitted:
            raise DataError("call fit() with an initial dataset before add_table()")
        if table.schema != self._schema:
            raise SchemaError(
                f"new table schema {table.schema} does not match fitted schema {self._schema}"
            )
        if table.name in self._known_sources:
            raise DataError(f"source {table.name!r} was already merged")
        assert self._representer is not None
        embeddings = self._representer.encode_table(table, self._attributes)
        new_table = ItemTable.from_embeddings(embeddings)
        merging = self.config.merging
        if merging.shards > 1:
            from ..shard.executor import sharded_merge_item_tables
            from ..shard.partition import lsh_owners, token_owners

            if self._item_owners is None:
                raise DataError(
                    "sharded merging config but no owner state; refit or load a sharded snapshot"
                )
            if merging.shard_key == "token":
                new_owners = token_owners(table, merging.shards, self._attributes)
            else:
                new_owners = lsh_owners(new_table.vectors, merging, merging.shards)
            merged, _, merged_owners = sharded_merge_item_tables(
                self._table,
                new_table,
                self._item_owners,
                new_owners,
                merging,
                executor=self._executor,
                cache=self._index_cache,
            )
        else:
            merged, _ = merge_item_tables(
                self._table, new_table, merging, cache=self._index_cache
            )
            merged_owners = None
        # Commit state only after the merge succeeded, so a failed add_table
        # (e.g. OOM at scale) leaves the matcher consistent and retryable.
        self._store.add_table(embeddings)
        self._table = merged
        self._item_owners = merged_owners
        self._known_sources.add(table.name)
        return self._result()

    # ---------------------------------------------------------------- result
    def _result(self) -> MatchResult:
        pruned = prune_item_table(
            self._table,
            self._store,
            self.config.pruning,
            executor=self._executor,
            owners=self._item_owners,
        )
        method = (
            "IncrementalMultiEM (parallel)" if self._executor.is_parallel else "IncrementalMultiEM"
        )
        return MatchResult(
            tuples={frozenset(item.members) for item in pruned},
            selected_attributes=self._attributes,
            timings=StageTimings(),
            method=method,
            metadata={"num_sources": len(self._known_sources), "num_items": len(self._table)},
        )

    @property
    def known_sources(self) -> tuple[str, ...]:
        """Names of the sources merged so far, sorted."""
        return tuple(sorted(self._known_sources))

    @property
    def integrated_table(self) -> ItemTable:
        """The current integrated item table (flat form, read-only by contract)."""
        return self._table

    # --------------------------------------------------------------- snapshot
    def save(self, path, mode: str = "auto") -> dict:
        """Snapshot the fitted state to ``path`` (see :mod:`repro.store`).

        ``mode`` selects the persistence shape:

        * ``"full"`` — a self-contained snapshot, always.
        * ``"delta"`` — an append-only chain segment holding only what
          changed since the last save/load (requires a recorded base;
          must be written next to it).
        * ``"auto"`` (default) — a delta whenever a base exists and ``path``
          is not the base itself (overwriting the base in place falls back
          to a full rewrite rather than corrupting the lineage), else full.

        Returns the digest record the snapshot stores; load it back with
        :meth:`repro.store.MatchSession.load` (serving) or
        :func:`repro.store.load_matcher` (full matcher, ``add_table`` ready)
        — both resolve chains transparently.
        """
        import os

        from ..exceptions import StoreError
        from ..store.session import save_session, save_session_delta

        if mode not in ("auto", "full", "delta"):
            raise StoreError(f"unknown save mode {mode!r}; use 'auto', 'full' or 'delta'")
        if mode == "auto":
            overwrites_base = (
                self._base is not None
                and os.path.abspath(os.fspath(path)) == self._base["path"]
            )
            mode = "delta" if self._base is not None and not overwrites_base else "full"
        if mode == "delta":
            return save_session_delta(self, path)
        return save_session(self, path)

    def snapshot_state(self) -> dict:
        """The complete fitted state, as one documented bundle.

        Consumed by :mod:`repro.store.session`; every value is either a
        config object, a flat-array structure with its own codec, or a plain
        JSON-able scalar/sequence.
        """
        if not self.is_fitted:
            raise DataError("cannot snapshot an unfitted matcher; call fit() first")
        state = {
            "config": self.config,
            "encoder": self._representer.encoder if self._representer else None,
            "attributes": self._attributes,
            "schema": self._schema,
            "table": self._table,
            "store": self._store,
            "known_sources": sorted(self._known_sources),
            "index_cache": self._index_cache,
        }
        if self._item_owners is not None:
            state["item_owners"] = self._item_owners
        return state

    @classmethod
    def from_snapshot_state(
        cls,
        *,
        config: MultiEMConfig,
        encoder,
        attributes: tuple[str, ...],
        schema: tuple[str, ...],
        table: ItemTable,
        store: EmbeddingStore,
        known_sources,
        index_cache: IndexCache | None,
        item_owners: np.ndarray | None = None,
    ) -> "IncrementalMultiEM":
        """Rehydrate a fitted matcher from restored state (snapshot load path).

        ``encoder`` is the restored *inner* sentence encoder; the representer
        re-wraps it in its caching layer exactly as :meth:`fit` would have.
        """
        matcher = cls(config)
        matcher._representer = EntityRepresenter(config.representation, encoder=encoder)
        matcher._representer._fitted = True
        matcher._attributes = tuple(attributes)
        matcher._schema = tuple(schema)
        matcher._table = table
        matcher._store = store
        matcher._known_sources = set(known_sources)
        matcher._index_cache = index_cache
        matcher._item_owners = item_owners
        return matcher

    # -------------------------------------------------------------- teardown
    def close(self) -> None:
        """Release the persistent worker pool (idempotent).

        The matcher stays usable afterwards — the executor lazily re-creates
        its pool if another ``fit`` / ``add_table`` needs one.
        """
        self._executor.close()

    def __enter__(self) -> "IncrementalMultiEM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
