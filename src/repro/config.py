"""Configuration objects for the MultiEM pipeline.

The defaults mirror the paper's implementation details (Section IV-A):
``k = 1``, ``MinPts = 2``, sampling ratio ``r = 0.2`` (``0.05`` for very large
datasets), ``epsilon`` from ``{0.8, 1.0}``, ``m`` from
``{0.05, 0.2, 0.35, 0.5}``, ``gamma`` from ``{0.8, 0.9}``, cosine distance for
merging and euclidean distance for pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .exceptions import ConfigurationError

#: Hyper-parameter grids used by the paper's grid search (Section IV-A).
PAPER_M_GRID = (0.05, 0.2, 0.35, 0.5)
PAPER_EPSILON_GRID = (0.8, 1.0)
PAPER_GAMMA_GRID = (0.8, 0.9)

#: Re-calibrated grids for the hashed-n-gram encoder used in this repo.
#: Sentence-BERT places textual variants of one entity at cosine distance
#: ~0.05-0.2; the from-scratch encoder places them at ~0.2-0.6, so the same
#: sweep shape is explored at a shifted scale (see EXPERIMENTS.md).
REPRO_M_GRID = (0.35, 0.5, 0.65, 0.8)
REPRO_EPSILON_GRID = (0.8, 1.0, 1.2, 1.4)
REPRO_GAMMA_GRID = (0.8, 0.85, 0.9, 0.95)


@dataclass(frozen=True)
class RepresentationConfig:
    """Settings for the enhanced entity representation stage.

    Attributes:
        encoder: which sentence encoder to use (``"hashed-ngram"`` or
            ``"tfidf-svd"``); both are Sentence-BERT substitutes.
        dimension: embedding dimensionality (the paper's MiniLM is 384-d).
        max_sequence_length: maximum number of tokens kept per serialized
            entity (paper: 64).
        attribute_selection: whether to run Algorithm 1 (the EER module);
            turning this off gives the "w/o EER" ablation.
        gamma: significance threshold γ for attribute selection.
        sample_ratio: row sampling ratio r used when scoring attributes.
        seed: RNG seed for sampling and shuffling inside Algorithm 1.
    """

    encoder: str = "hashed-ngram"
    dimension: int = 384
    max_sequence_length: int = 64
    attribute_selection: bool = True
    gamma: float = 0.9
    sample_ratio: float = 0.2
    seed: int = 0

    def validate(self) -> None:
        if self.dimension <= 0:
            raise ConfigurationError("embedding dimension must be positive")
        if not 0 < self.sample_ratio <= 1:
            raise ConfigurationError("sample_ratio must be in (0, 1]")
        if self.max_sequence_length <= 0:
            raise ConfigurationError("max_sequence_length must be positive")
        if self.encoder not in ("hashed-ngram", "tfidf-svd"):
            raise ConfigurationError(f"unknown encoder {self.encoder!r}")
        if not 0 <= self.gamma <= 1:
            raise ConfigurationError("gamma must be in [0, 1]")


@dataclass(frozen=True)
class MergingConfig:
    """Settings for table-wise hierarchical merging (Algorithms 2-3).

    Attributes:
        k: mutual top-K neighbourhood size (paper: 1).
        m: distance threshold for accepting a neighbour pair.
        metric: distance used during merging (paper: cosine).
        index: ANN backend — ``"auto"`` picks brute force below
            ``brute_force_limit`` rows and HNSW above, ``"hnsw"``,
            ``"brute-force"`` or ``"lsh"`` force a backend.
        brute_force_limit: table size under which exact search is used in
            ``"auto"`` mode.
        hnsw_ef_construction / hnsw_ef_search / hnsw_max_degree: HNSW knobs.
        lsh_num_tables / lsh_num_bits / lsh_probe_neighbors: LSH knobs (hash
            tables, signature bits, Hamming-1 neighbour probing) for the
            backend-ablation benchmark.
        index_cache: consult an :class:`repro.ann.cache.IndexCache` before
            building per-merge ANN indexes, reusing carried-forward indexes
            across hierarchy levels (and across ``add_table`` calls in the
            incremental matcher). Reuse is exact, so results are unchanged.
        index_cache_entries: LRU capacity of that cache.
        kernel_threads: worker threads for the native HNSW build (``1`` =
            sequential). Content-neutral — the threaded build commits in
            insertion order and produces byte-identical graphs at any
            setting. Usually set via ``ParallelConfig.kernel_threads``,
            which the pipeline copies here.
        quantized_scan: opt the brute-force backend into the int8 coarse
            scan + exact float32 re-rank path (never a default; see
            :func:`repro.ann.engine.quantized_topk`).
        seed: seed controlling the random pairing of tables at each hierarchy
            level (Figure 6(b) studies sensitivity to this order).
        shards: number of merge shards (``1`` = the classic unsharded pass).
            With ``shards > 1`` the merge plane routes every mutual top-K
            query workload through the :mod:`repro.shard` subsystem: rows are
            partitioned by blocking key, each shard's queries run
            independently, and a boundary pass stitches cross-shard pairs
            back together. Output is byte-identical to the unsharded merge at
            any shard count.
        shard_key: partitioning key family — ``"lsh"`` hashes representative
            vectors through :func:`repro.ann.lsh.bucket_keys`, ``"token"``
            reuses the token-blocking keys of the raw records (only available
            to entry points that still hold the raw tables).
    """

    k: int = 1
    m: float = 0.5
    metric: str = "cosine"
    index: str = "auto"
    brute_force_limit: int = 4096
    hnsw_ef_construction: int = 100
    hnsw_ef_search: int = 64
    hnsw_max_degree: int = 16
    lsh_num_tables: int = 8
    lsh_num_bits: int = 12
    lsh_probe_neighbors: bool = True
    index_cache: bool = True
    index_cache_entries: int = 8
    kernel_threads: int = 1
    quantized_scan: bool = False
    seed: int = 0
    shards: int = 1
    shard_key: str = "lsh"

    def validate(self) -> None:
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if self.m < 0:
            raise ConfigurationError("m must be non-negative")
        if self.metric not in ("cosine", "euclidean"):
            raise ConfigurationError(f"unknown merging metric {self.metric!r}")
        if self.index not in ("auto", "hnsw", "brute-force", "lsh"):
            raise ConfigurationError(f"unknown index backend {self.index!r}")
        if self.brute_force_limit < 1:
            raise ConfigurationError("brute_force_limit must be >= 1")
        if self.lsh_num_tables < 1 or self.lsh_num_bits < 1:
            raise ConfigurationError("lsh_num_tables and lsh_num_bits must be >= 1")
        if self.index_cache_entries < 1:
            raise ConfigurationError("index_cache_entries must be >= 1")
        if self.kernel_threads < 1:
            raise ConfigurationError("kernel_threads must be >= 1")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.shard_key not in ("lsh", "token"):
            raise ConfigurationError(f"unknown shard key {self.shard_key!r}")


@dataclass(frozen=True)
class PruningConfig:
    """Settings for density-based pruning (Algorithm 4).

    Attributes:
        enabled: turning this off gives the "w/o DP" ablation.
        epsilon: neighbourhood radius ε (euclidean, paper grid {0.8, 1.0}).
        min_pts: MinPts, the neighbour count needed to be a core entity.
        metric: distance used during pruning (paper: euclidean).
        batch_rows: per-block cap for the vectorized classifier — at most
            this many member rows are gathered into one batched distance
            block (a single tuple always classifies whole, even beyond the
            cap). Any value yields byte-identical output (blocking never
            changes a tuple's arithmetic); it only trades peak block memory
            for call count.
    """

    enabled: bool = True
    epsilon: float = 1.0
    min_pts: int = 2
    metric: str = "euclidean"
    batch_rows: int = 8192

    def validate(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.min_pts < 1:
            raise ConfigurationError("min_pts must be >= 1")
        if self.metric not in ("cosine", "euclidean"):
            raise ConfigurationError(f"unknown pruning metric {self.metric!r}")
        if self.batch_rows < 1:
            raise ConfigurationError("batch_rows must be >= 1")


@dataclass(frozen=True)
class ParallelConfig:
    """Settings for the parallel variant MultiEM(parallel).

    Attributes:
        enabled: run merging and pruning through a worker pool.
        backend: ``"thread"`` or ``"process"``; threads are the default since
            the heavy lifting is released-GIL numpy work.
        max_workers: pool size (``None`` lets the executor decide).
        reuse_pool: keep one persistent worker pool per
            :class:`~repro.core.parallel.ParallelExecutor` lifetime (the
            default). ``False`` restores the historical spin-up-per-call
            behaviour — only useful as the baseline in the pool-reuse
            benchmark.
        shared_memory: with the process backend, ship merge/prune task
            arrays through a shared-memory plane
            (:mod:`repro.store.plane`) instead of pickling them through the
            pool's pipes — workers receive integer descriptors and attach
            zero-copy views. Bit-identical to the pickle dispatch; ignored
            by the serial and thread backends (and on platforms without
            POSIX shared memory).
        self_heal: recover from pool failures instead of raising — a killed
            worker (``BrokenProcessPool``) or a task exceeding
            ``task_timeout`` restarts the pool, re-dispatches the missing
            tasks with exponential backoff (``max_retries`` rounds), and
            finally degrades to in-parent serial execution of whatever is
            still missing. Tasks are pure, so healing changes wall-clock and
            metrics only, never result bytes. Genuine task exceptions still
            propagate un-retried.
        task_timeout: seconds to wait for any single task before declaring
            the pool wedged (``None`` waits forever — hung workers are then
            only caught by the caller).
        max_retries: pool-restart rounds before serial degradation.
        retry_backoff: base sleep (seconds) between rounds, doubled each
            round.
        kernel_threads: worker threads inside the native HNSW build kernel
            (``1`` = sequential). Orthogonal to the pool knobs above — this
            parallelises *within* one index build rather than across tasks —
            and content-neutral: graphs are byte-identical at any setting.
            The pipeline copies it onto ``MergingConfig.kernel_threads``.
    """

    enabled: bool = False
    backend: str = "thread"
    max_workers: int | None = None
    reuse_pool: bool = True
    shared_memory: bool = False
    self_heal: bool = True
    task_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.1
    kernel_threads: int = 1

    def validate(self) -> None:
        if self.backend not in ("thread", "process", "serial"):
            raise ConfigurationError(f"unknown parallel backend {self.backend!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when given")
        if self.kernel_threads < 1:
            raise ConfigurationError("kernel_threads must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError("task_timeout must be > 0 when given")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")


@dataclass(frozen=True)
class MultiEMConfig:
    """Complete configuration for a :class:`repro.core.pipeline.MultiEM` run."""

    representation: RepresentationConfig = field(default_factory=RepresentationConfig)
    merging: MergingConfig = field(default_factory=MergingConfig)
    pruning: PruningConfig = field(default_factory=PruningConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    def validate(self) -> None:
        self.representation.validate()
        self.merging.validate()
        self.pruning.validate()
        self.parallel.validate()

    def with_overrides(self, **overrides: Mapping[str, Any]) -> "MultiEMConfig":
        """Return a copy with per-section overrides.

        Example:
            >>> cfg = MultiEMConfig().with_overrides(merging={"m": 0.2})
            >>> cfg.merging.m
            0.2
        """
        sections: dict[str, Any] = {}
        for name, value in overrides.items():
            current = getattr(self, name, None)
            if current is None:
                raise ConfigurationError(f"unknown config section {name!r}")
            if isinstance(value, dict):
                sections[name] = replace(current, **value)
            else:
                sections[name] = value
        return replace(self, **sections)


def paper_default_config(dataset_name: str | None = None, *, parallel: bool = False) -> MultiEMConfig:
    """Return the configuration the paper reports for a given dataset.

    The paper tunes ``m``, ``epsilon`` and ``gamma`` by grid search per
    dataset; this helper returns sensible per-dataset picks used by the
    experiment harness. Unknown dataset names get the global defaults.
    """
    per_dataset: dict[str, dict[str, float]] = {
        "geo": {"m": 0.5, "epsilon": 1.0, "gamma": 0.9, "sample_ratio": 0.2},
        "music-20": {"m": 0.5, "epsilon": 1.2, "gamma": 0.9, "sample_ratio": 0.2},
        "music-200": {"m": 0.5, "epsilon": 1.2, "gamma": 0.9, "sample_ratio": 0.2},
        "music-2000": {"m": 0.5, "epsilon": 1.2, "gamma": 0.9, "sample_ratio": 0.2},
        "person": {"m": 0.65, "epsilon": 1.2, "gamma": 0.8, "sample_ratio": 0.05},
        "shopee": {"m": 0.35, "epsilon": 0.8, "gamma": 0.9, "sample_ratio": 0.2},
        "product": {"m": 0.5, "epsilon": 1.0, "gamma": 0.9, "sample_ratio": 0.2},
    }
    params = per_dataset.get(dataset_name or "", {})
    config = MultiEMConfig(
        representation=RepresentationConfig(
            gamma=float(params.get("gamma", 0.9)),
            sample_ratio=float(params.get("sample_ratio", 0.2)),
        ),
        merging=MergingConfig(m=float(params.get("m", 0.5))),
        pruning=PruningConfig(epsilon=float(params.get("epsilon", 1.0))),
        parallel=ParallelConfig(enabled=parallel),
    )
    config.validate()
    return config
