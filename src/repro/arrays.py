"""Flat-array (CSR) index helpers shared by the columnar engines.

The merge/prune engine, the LSH candidate gather, and Algorithm 1's column
splice all gather variable-length ranges out of flat arrays; this module
holds the one prefix-sum idiom they share.
"""

from __future__ import annotations

import numpy as np


def csr_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat positions of the concatenated ranges ``[starts[i], starts[i]+counts[i])``."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.cumsum(counts) - counts
    return np.repeat(np.asarray(starts, dtype=np.int64) - cum, counts) + np.arange(total)
