"""ALMSER-GB stand-in: graph-boosted active learning for multi-source ER.

ALMSER-GB (Primpeli & Bizer, ISWC 2021) actively queries an annotator for the
most informative candidate pairs, augments pair features with similarity-graph
signals, and trains a boosted classifier. The reproduction keeps that loop:

* candidate pairs come from mutual nearest neighbours across all table pairs;
* the "annotator" is the dataset's ground truth (an oracle with a fixed query
  budget, standing in for the paper's 5 % label budget);
* each active-learning round retrains a logistic-regression matcher on pair
  features extended with a graph feature (how strongly the two records are
  already connected through currently-predicted matches);
* the final pair predictions are converted to tuples with Algorithm 5.

Candidate generation is quadratic in the number of table pairs and the graph
feature needs the full candidate set in memory, so the baseline refuses very
large datasets — mirroring its timeouts on Music-200 and larger in the paper.
"""

from __future__ import annotations

import time

import numpy as np

from ..ann.mutual import mutual_top_k
from ..clustering.union_find import UnionFind
from ..core.result import MatchResult, StageTimings
from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..exceptions import BaselineUnsupportedError
from .common import pair_features, serialized_lookup, vanilla_embeddings
from .extension import pairs_to_tuples
from .supervised import LogisticRegression


class ALMSERGraphBoosted:
    """Active-learning multi-source matcher with a graph-connectivity feature."""

    name = "ALMSER-GB"

    def __init__(
        self,
        *,
        candidate_k: int = 2,
        candidate_max_distance: float = 0.8,
        query_budget: int = 200,
        rounds: int = 4,
        threshold: float = 0.5,
        max_total_entities: int | None = 10_000,
        seed: int = 0,
    ) -> None:
        self.candidate_k = candidate_k
        self.candidate_max_distance = candidate_max_distance
        self.query_budget = query_budget
        self.rounds = rounds
        self.threshold = threshold
        self.max_total_entities = max_total_entities
        self.seed = seed

    # ------------------------------------------------------------ candidates
    def _candidate_pairs(
        self, dataset: MultiTableDataset, lookup: dict[EntityRef, np.ndarray]
    ) -> list[tuple[EntityRef, EntityRef]]:
        tables = dataset.table_list()
        candidates: list[tuple[EntityRef, EntityRef]] = []
        for i, left in enumerate(tables):
            left_refs = left.refs()
            left_matrix = np.stack([lookup[ref] for ref in left_refs])
            for right in tables[i + 1 :]:
                right_refs = right.refs()
                right_matrix = np.stack([lookup[ref] for ref in right_refs])
                for pair in mutual_top_k(
                    left_matrix,
                    right_matrix,
                    k=self.candidate_k,
                    max_distance=self.candidate_max_distance,
                    metric="cosine",
                ):
                    candidates.append((left_refs[pair.left], right_refs[pair.right]))
        return candidates

    @staticmethod
    def _graph_feature(
        pair: tuple[EntityRef, EntityRef], components: UnionFind[EntityRef]
    ) -> float:
        """1.0 when the two records are already transitively connected."""
        a, b = pair
        if a not in components or b not in components:
            return 0.0
        return 1.0 if components.connected(a, b) else 0.0

    # ----------------------------------------------------------------- match
    def match(self, dataset: MultiTableDataset) -> MatchResult:
        if self.max_total_entities is not None and dataset.num_entities > self.max_total_entities:
            raise BaselineUnsupportedError(
                f"{self.name} does not scale to {dataset.num_entities} entities"
            )
        started = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        _, lookup = vanilla_embeddings(dataset, seed=self.seed)
        texts = serialized_lookup(dataset)
        truth_pairs = dataset.truth_pairs()

        candidates = self._candidate_pairs(dataset, lookup)
        if not candidates:
            return MatchResult(
                tuples=set(), method=self.name, timings=StageTimings(merging=time.perf_counter() - started)
            )
        base_features = np.stack(
            [pair_features(lookup[a], lookup[b], texts[a], texts[b]) for a, b in candidates]
        )
        labels = np.array(
            [1.0 if (min(a, b), max(a, b)) in truth_pairs else 0.0 for a, b in candidates]
        )

        labeled_mask = np.zeros(len(candidates), dtype=bool)
        # Seed round: random queries; later rounds: uncertainty sampling.
        per_round = max(1, self.query_budget // self.rounds)
        seed_indices = rng.choice(len(candidates), size=min(per_round, len(candidates)), replace=False)
        labeled_mask[seed_indices] = True

        classifier = LogisticRegression()
        components: UnionFind[EntityRef] = UnionFind()
        predictions = np.zeros(len(candidates), dtype=bool)
        for _ in range(self.rounds):
            graph_column = np.array(
                [self._graph_feature(pair, components) for pair in candidates]
            )[:, None]
            features = np.hstack([base_features, graph_column])
            train_labels = labels[labeled_mask]
            if len(set(train_labels.tolist())) < 2:
                # Oracle happened to return one class only; query more pairs.
                extra = rng.choice(len(candidates), size=min(per_round, len(candidates)), replace=False)
                labeled_mask[extra] = True
                train_labels = labels[labeled_mask]
                if len(set(train_labels.tolist())) < 2:
                    break
            classifier.fit(features[labeled_mask], train_labels)
            probabilities = classifier.predict_proba(features)
            predictions = probabilities >= self.threshold
            # Rebuild the prediction graph for the next round's graph feature.
            components = UnionFind()
            for pair, predicted in zip(candidates, predictions):
                if predicted:
                    components.union(pair[0], pair[1])
            # Uncertainty sampling for the next round.
            if labeled_mask.sum() < self.query_budget:
                uncertainty = np.abs(probabilities - 0.5)
                uncertainty[labeled_mask] = np.inf
                next_queries = np.argsort(uncertainty)[:per_round]
                labeled_mask[next_queries] = True

        matched_pairs = [pair for pair, predicted in zip(candidates, predictions) if predicted]
        tuples = pairs_to_tuples(matched_pairs)
        elapsed = time.perf_counter() - started
        return MatchResult(
            tuples=tuples,
            selected_attributes=dataset.schema,
            timings=StageTimings(merging=elapsed),
            method=self.name,
            metadata={
                "num_candidates": len(candidates),
                "num_queried": int(labeled_mask.sum()),
                "num_matched_pairs": len(matched_pairs),
            },
        )
