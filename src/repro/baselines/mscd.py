"""MSCD-HAC and MSCD-AP: clustering-based multi-source entity resolution.

MSCD-HAC (Saeedi et al., KEOD 2021) clusters entities from multiple *clean*
sources with extensions of hierarchical agglomerative clustering; MSCD-AP
(Lerm et al., BTW 2021) does the same with affinity propagation. Both operate
on a full pairwise similarity matrix, which makes them cubic-ish in time
(HAC) and quadratic in memory (both) — the paper's Tables IV-VI show them
failing on everything beyond the smallest dataset, and these reproductions
keep that behaviour via ``max_total_entities``.

The "clean source" assumption (one record per real-world entity per source)
is enforced as a merge constraint: two records from the same source are never
placed in the same cluster.
"""

from __future__ import annotations

import time

import numpy as np

from ..ann.distances import pairwise_distances
from ..clustering.affinity_propagation import affinity_propagation
from ..clustering.hierarchical import agglomerative_clustering
from ..core.result import MatchResult, StageTimings
from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..exceptions import BaselineUnsupportedError
from .common import vanilla_embeddings


class MSCDHAC:
    """Source-aware hierarchical agglomerative clustering baseline."""

    name = "MSCD-HAC"

    def __init__(
        self,
        distance_threshold: float = 0.55,
        linkage: str = "average",
        max_total_entities: int | None = 2_500,
        seed: int = 0,
    ) -> None:
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.max_total_entities = max_total_entities
        self.seed = seed

    def match(self, dataset: MultiTableDataset) -> MatchResult:
        if self.max_total_entities is not None and dataset.num_entities > self.max_total_entities:
            raise BaselineUnsupportedError(
                f"{self.name} (O(n^3) HAC) does not scale to {dataset.num_entities} entities"
            )
        started = time.perf_counter()
        _, lookup = vanilla_embeddings(dataset, seed=self.seed)
        refs: list[EntityRef] = dataset.all_refs()
        vectors = np.stack([lookup[ref] for ref in refs])
        sources = [ref.source for ref in refs]

        def clean_source_constraint(members_a: list[int], members_b: list[int]) -> bool:
            sources_a = {sources[i] for i in members_a}
            sources_b = {sources[i] for i in members_b}
            return not (sources_a & sources_b)

        clustering = agglomerative_clustering(
            vectors,
            distance_threshold=self.distance_threshold,
            linkage=self.linkage,
            metric="cosine",
            constraint=clean_source_constraint,
        )
        tuples = {
            frozenset(refs[i] for i in members)
            for members in clustering.clusters()
            if len(members) >= 2
        }
        elapsed = time.perf_counter() - started
        return MatchResult(
            tuples=tuples,
            selected_attributes=dataset.schema,
            timings=StageTimings(merging=elapsed),
            method=self.name,
            metadata={"num_clusters": clustering.num_clusters},
        )


class MSCDAP:
    """Affinity-propagation multi-source clustering baseline."""

    name = "MSCD-AP"

    def __init__(
        self,
        damping: float = 0.7,
        preference_quantile: float = 0.3,
        max_total_entities: int | None = 2_000,
        seed: int = 0,
    ) -> None:
        self.damping = damping
        self.preference_quantile = preference_quantile
        self.max_total_entities = max_total_entities
        self.seed = seed

    def match(self, dataset: MultiTableDataset) -> MatchResult:
        if self.max_total_entities is not None and dataset.num_entities > self.max_total_entities:
            raise BaselineUnsupportedError(
                f"{self.name} (O(n^2) message passing) does not scale to "
                f"{dataset.num_entities} entities"
            )
        started = time.perf_counter()
        _, lookup = vanilla_embeddings(dataset, seed=self.seed)
        refs = dataset.all_refs()
        vectors = np.stack([lookup[ref] for ref in refs])
        distances = pairwise_distances(vectors, "cosine")
        similarity = -distances
        preference = float(np.quantile(similarity, self.preference_quantile))
        result = affinity_propagation(similarity, damping=self.damping, preference=preference)
        clusters: dict[int, list[int]] = {}
        for row, label in enumerate(result.labels):
            clusters.setdefault(int(label), []).append(row)
        tuples = {
            frozenset(refs[i] for i in members) for members in clusters.values() if len(members) >= 2
        }
        elapsed = time.perf_counter() - started
        return MatchResult(
            tuples=tuples,
            selected_attributes=dataset.schema,
            timings=StageTimings(merging=elapsed),
            method=self.name,
            metadata={"num_clusters": result.num_clusters, "converged": result.converged},
        )
