"""Two-table matcher interface plus pairwise and chain multi-table drivers.

The paper extends two-table EM methods to the multi-table setting in two
ways (Figure 2):

* **pairwise matching** — run the two-table matcher on every pair of tables
  (quadratic in the number of tables);
* **chain matching** — pick a base table and fold the remaining tables into
  it one at a time (the base table grows, so later matches get slower).

Both drivers work with any :class:`TwoTableMatcher`; the matched pairs they
accumulate are converted to tuples with Algorithm 5.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from ..core.result import MatchResult, StageTimings
from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..data.table import Table
from ..exceptions import BaselineUnsupportedError
from .extension import pairs_to_tuples

#: A matched pair produced by a two-table matcher.
MatchedPair = tuple[EntityRef, EntityRef]


class TwoTableMatcher(ABC):
    """A matcher that, given two tables, returns matched entity-ref pairs."""

    name: str = "two-table matcher"

    #: Datasets larger than this (total entities) raise
    #: :class:`BaselineUnsupportedError`, mirroring the paper's '-'/'\\' cells.
    max_total_entities: int | None = None

    def prepare(self, dataset: MultiTableDataset) -> None:
        """Hook called once per dataset before any table pair is matched."""

    @abstractmethod
    def match_tables(self, left: Table, right: Table) -> list[MatchedPair]:
        """Return matched pairs between two tables."""

    def _check_supported(self, dataset: MultiTableDataset) -> None:
        if self.max_total_entities is not None and dataset.num_entities > self.max_total_entities:
            raise BaselineUnsupportedError(
                f"{self.name} does not scale to {dataset.num_entities} entities "
                f"(limit {self.max_total_entities}), mirroring the paper's timeout/memory failures"
            )


class PairwiseMatchingDriver:
    """Figure 2(a): apply a two-table matcher to every pair of tables."""

    def __init__(self, matcher: TwoTableMatcher) -> None:
        self.matcher = matcher

    def match(self, dataset: MultiTableDataset) -> MatchResult:
        self.matcher._check_supported(dataset)
        started = time.perf_counter()
        self.matcher.prepare(dataset)
        tables = dataset.table_list()
        all_pairs: list[MatchedPair] = []
        for i, left in enumerate(tables):
            for right in tables[i + 1 :]:
                all_pairs.extend(self.matcher.match_tables(left, right))
        tuples = pairs_to_tuples(all_pairs)
        elapsed = time.perf_counter() - started
        return MatchResult(
            tuples=tuples,
            selected_attributes=dataset.schema,
            timings=StageTimings(merging=elapsed),
            method=f"{self.matcher.name} (pw)",
            metadata={"num_matched_pairs": len(all_pairs), "driver": "pairwise"},
        )


class ChainMatchingDriver:
    """Figure 2(c): fold tables into a growing base table one at a time.

    The base table accumulates every record seen so far (that is why chain
    matching slows down as it goes), while a side list maps each base-table
    row back to the original :class:`EntityRef` so the matched pairs reported
    to Algorithm 5 always reference the source tables.
    """

    def __init__(self, matcher: TwoTableMatcher) -> None:
        self.matcher = matcher

    def match(self, dataset: MultiTableDataset) -> MatchResult:
        self.matcher._check_supported(dataset)
        started = time.perf_counter()
        self.matcher.prepare(dataset)
        tables = dataset.table_list()
        schema = dataset.schema

        base_rows: list[tuple[str, ...]] = [tables[0].row(i) for i in range(len(tables[0]))]
        base_refs: list[EntityRef] = tables[0].refs()
        all_pairs: list[MatchedPair] = []
        for position, other in enumerate(tables[1:], start=1):
            base_name = f"__chain_{position}__"
            base_table = Table(base_name, schema, base_rows)
            for left, right in self.matcher.match_tables(base_table, other):
                original_left = base_refs[left.index] if left.source == base_name else left
                original_right = base_refs[right.index] if right.source == base_name else right
                all_pairs.append((original_left, original_right))
            base_rows.extend(other.row(i) for i in range(len(other)))
            base_refs.extend(other.refs())

        tuples = pairs_to_tuples(all_pairs)
        elapsed = time.perf_counter() - started
        return MatchResult(
            tuples=tuples,
            selected_attributes=dataset.schema,
            timings=StageTimings(merging=elapsed),
            method=f"{self.matcher.name} (c)",
            metadata={"num_matched_pairs": len(all_pairs), "driver": "chain"},
        )
