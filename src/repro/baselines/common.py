"""Shared helpers for the baseline matchers.

Baselines embed entities with the *vanilla* representation (no attribute
selection) — the enhanced representation is MultiEM's contribution and must
not leak into its competitors.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..config import RepresentationConfig
from ..core.representation import EntityRepresenter, TableEmbeddings
from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..data.serialization import serialize_entity
from ..text.tokenizer import text_ngrams, word_tokens


def vanilla_embeddings(
    dataset: MultiTableDataset, *, dimension: int = 384, seed: int = 0
) -> tuple[dict[str, TableEmbeddings], Mapping[EntityRef, np.ndarray]]:
    """Embed every table with the plain (non-enhanced) representation."""
    config = RepresentationConfig(attribute_selection=False, dimension=dimension, seed=seed)
    representer = EntityRepresenter(config)
    embeddings = representer.encode_dataset(dataset)
    return embeddings, EntityRepresenter.embedding_lookup(embeddings)


def jaccard(a: set[str], b: set[str]) -> float:
    """Jaccard similarity of two token sets (0 when both are empty)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def pair_features(
    left_vector: np.ndarray,
    right_vector: np.ndarray,
    left_text: str,
    right_text: str,
) -> np.ndarray:
    """Compact feature vector describing one candidate pair.

    Features: embedding cosine similarity, embedding euclidean distance,
    word-token Jaccard, character-3-gram Jaccard, relative length difference,
    and a constant bias term. This is the stand-in for the learned pair
    representation of the supervised PLM matchers.
    """
    cosine = float(np.dot(left_vector, right_vector))
    euclid = float(np.linalg.norm(left_vector - right_vector))
    left_tokens, right_tokens = set(word_tokens(left_text)), set(word_tokens(right_text))
    token_jaccard = jaccard(left_tokens, right_tokens)
    gram_jaccard = jaccard(set(text_ngrams(left_text, 3, 3)), set(text_ngrams(right_text, 3, 3)))
    max_len = max(len(left_text), len(right_text), 1)
    length_diff = abs(len(left_text) - len(right_text)) / max_len
    return np.array([cosine, euclid, token_jaccard, gram_jaccard, length_diff, 1.0], dtype=np.float64)


def serialized_lookup(dataset: MultiTableDataset) -> dict[EntityRef, str]:
    """Serialized text of every entity (all attributes, no selection)."""
    texts: dict[EntityRef, str] = {}
    for table in dataset.table_list():
        for entity in table.entities():
            texts[entity.ref] = serialize_entity(entity)
    return texts
