"""AutoFuzzyJoin-style unsupervised two-table matcher.

AutoFuzzyJoin (Li et al., SIGMOD 2021) auto-programs a fuzzy join without
labels by exploiting the fact that a *reference* table is (mostly) free of
duplicates: join configurations can be ranked by the precision they would
achieve on reference-vs-reference self joins, and the threshold is chosen to
hit a target precision. This module reproduces that idea with one similarity
family (character-n-gram TF-IDF cosine):

1. estimate a similarity threshold from the left table's self-join — the
   distribution of each record's nearest *other* record gives an upper bound
   on how similar two *distinct* entities tend to be;
2. join records across tables whose similarity clears the threshold and that
   are mutually nearest, which keeps precision high (AutoFJ's hallmark:
   high precision, modest recall — visible in Table IV's AutoFJ rows).

Like the original, memory grows with the TF-IDF similarity matrices, so the
matcher refuses datasets beyond ``max_total_entities`` (the paper's ``-``
cells for Music-200 and larger).
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..text.tfidf import TfidfVectorizer, cosine_similarity_sparse
from .two_table import MatchedPair, TwoTableMatcher

#: rows of the left operand multiplied per block when densifying similarity
#: matrices — bounds peak memory to one dense output plus one block.
SIMILARITY_BLOCK_ROWS = 2048


class AutoFuzzyJoin(TwoTableMatcher):
    """Unsupervised precision-targeted fuzzy join between two tables."""

    name = "AutoFJ"

    def __init__(
        self,
        target_precision: float = 0.9,
        max_total_entities: int | None = 10_000,
        min_threshold: float = 0.5,
    ) -> None:
        self.target_precision = target_precision
        self.max_total_entities = max_total_entities
        self.min_threshold = min_threshold

    # ----------------------------------------------------------------- utils
    @staticmethod
    def _serialize(table: Table) -> list[str]:
        return [" ".join(v for v in table.row(i) if v) for i in range(len(table))]

    def _self_join_threshold(self, similarity: np.ndarray) -> float:
        """Threshold above the similarity of nearly all distinct-entity pairs.

        The left (reference) table is assumed duplicate-free, so the nearest
        neighbour of each record *within the same table* is a different
        entity; the high quantile of those similarities is the point beyond
        which cross-table matches are likely true matches.
        """
        if similarity.shape[0] < 2:
            return self.min_threshold
        masked = similarity.copy()
        np.fill_diagonal(masked, -1.0)
        nearest = masked.max(axis=1)
        quantile = float(np.quantile(nearest, self.target_precision))
        return max(self.min_threshold, min(0.95, quantile))

    # ----------------------------------------------------------------- match
    def match_tables(self, left: Table, right: Table) -> list[MatchedPair]:
        left_texts = self._serialize(left)
        right_texts = self._serialize(right)
        if not left_texts or not right_texts:
            return []
        vectorizer = TfidfVectorizer(analyzer="char", ngram_range=(3, 4))
        vectorizer.fit(left_texts + right_texts)
        left_matrix = vectorizer.transform(left_texts)
        right_matrix = vectorizer.transform(right_texts)

        left_self = cosine_similarity_sparse(
            left_matrix, left_matrix, block_size=SIMILARITY_BLOCK_ROWS
        )
        threshold = self._self_join_threshold(left_self)

        cross = cosine_similarity_sparse(
            left_matrix, right_matrix, block_size=SIMILARITY_BLOCK_ROWS
        )
        best_right_for_left = cross.argmax(axis=1)
        best_left_for_right = cross.argmax(axis=0)
        pairs: list[MatchedPair] = []
        left_refs, right_refs = left.refs(), right.refs()
        for left_row, right_row in enumerate(best_right_for_left):
            right_row = int(right_row)
            if int(best_left_for_right[right_row]) != left_row:
                continue
            if cross[left_row, right_row] >= threshold:
                pairs.append((left_refs[left_row], right_refs[right_row]))
        return pairs
