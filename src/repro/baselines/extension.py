"""Extension from matched pairs to matched tuples (Algorithm 5).

Two-table EM methods output matched *pairs*; the multi-table setting is
evaluated on matched *tuples*. Algorithm 5 converts pairs to tuples by taking,
for every entity, the set of entities it is (transitively) matched with —
which is exactly the connected component of the pair graph containing it.
This conversion is where transitive conflicts surface: one wrong pair can
glue two otherwise-correct tuples together.
"""

from __future__ import annotations

from typing import Iterable

from ..clustering.connected_components import match_groups
from ..data.dataset import MatchTuple
from ..data.entity import EntityRef


def pairs_to_tuples(pairs: Iterable[tuple[EntityRef, EntityRef]]) -> set[MatchTuple]:
    """Algorithm 5: group matched pairs into matched tuples.

    Every connected component of the pair graph with at least two members
    becomes one predicted tuple.
    """
    groups = match_groups(pairs, min_size=2)
    return {frozenset(group) for group in groups}


def tuples_from_pair_lists(pair_lists: Iterable[Iterable[tuple[EntityRef, EntityRef]]]) -> set[MatchTuple]:
    """Union several per-table-pair match lists, then convert to tuples.

    Pairwise and chain matching both produce one pair list per two-table run;
    the union of those lists feeds Algorithm 5.
    """
    all_pairs: list[tuple[EntityRef, EntityRef]] = []
    for pair_list in pair_lists:
        all_pairs.extend(pair_list)
    return pairs_to_tuples(all_pairs)
