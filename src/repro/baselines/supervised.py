"""Supervised two-table matchers standing in for Ditto and PromptEM.

The paper compares against two PLM-based supervised matchers: Ditto
(fine-tuned BERT) and PromptEM (prompt tuning, stronger in low-resource
settings). Fine-tuning a language model is impossible offline, so these
stand-ins keep the *protocol* identical — train on 5 % of the ground truth,
predict match/non-match per candidate pair, extend to tuples with
Algorithm 5 — while replacing the PLM with a logistic-regression classifier
over pair features (embedding similarity, token/char overlap, length).

The two stand-ins differ the way their originals do:

* :class:`DittoMatcher` uses a fixed 0.5 decision threshold and a narrower
  candidate pool (vanilla fine-tuning behaviour);
* :class:`PromptEMMatcher` calibrates its decision threshold on the
  validation split and searches a wider candidate pool, reflecting
  PromptEM's better low-resource generalization.

Both inherit the failure mode the paper highlights: their pairwise
predictions are stitched into tuples by transitivity, so a single wrong pair
merges two tuples (transitive conflicts), and recall-heavy predictions tank
tuple-level precision.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ann.brute_force import BruteForceIndex
from ..config import RepresentationConfig
from ..core.representation import EntityRepresenter
from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..data.serialization import serialize_table
from ..data.table import Table
from ..evaluation.sampling import sample_labeled_pairs
from ..exceptions import DataError
from .common import pair_features, serialized_lookup
from .two_table import MatchedPair, TwoTableMatcher


class LogisticRegression:
    """Minimal L2-regularized logistic regression trained with gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 300, l2: float = 1e-3) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != labels.shape[0]:
            raise DataError("features and labels must align")
        # Standardize columns (except the trailing bias column) for stable steps.
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std == 0] = 1.0
        self._mean[-1], self._std[-1] = 0.0, 1.0
        scaled = (features - self._mean) / self._std
        weights = np.zeros(features.shape[1])
        for _ in range(self.epochs):
            predictions = 1.0 / (1.0 + np.exp(-(scaled @ weights)))
            gradient = scaled.T @ (predictions - labels) / len(labels) + self.l2 * weights
            weights -= self.learning_rate * gradient
        self.weights = weights
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise DataError("classifier must be fitted before predicting")
        scaled = (np.asarray(features, dtype=np.float64) - self._mean) / self._std
        return 1.0 / (1.0 + np.exp(-(scaled @ self.weights)))


class EmbeddingPairClassifier(TwoTableMatcher):
    """Supervised pair classifier over embedding + string-overlap features."""

    name = "PairClassifier"

    def __init__(
        self,
        *,
        candidate_k: int = 3,
        threshold: float = 0.5,
        calibrate_threshold: bool = False,
        train_fraction: float = 0.05,
        max_total_entities: int | None = 12_000,
        seed: int = 0,
    ) -> None:
        self.candidate_k = candidate_k
        self.threshold = threshold
        self.calibrate_threshold = calibrate_threshold
        self.train_fraction = train_fraction
        self.max_total_entities = max_total_entities
        self.seed = seed
        self._classifier = LogisticRegression()
        self._representer: EntityRepresenter | None = None
        self._vectors: Mapping[EntityRef, np.ndarray] = {}
        self._texts: dict[EntityRef, str] = {}

    # --------------------------------------------------------------- prepare
    def prepare(self, dataset: MultiTableDataset) -> None:
        """Embed the dataset and train on the 5 % labeled sample."""
        self._representer = EntityRepresenter(
            RepresentationConfig(attribute_selection=False, seed=self.seed)
        )
        self._representer.fit(dataset)
        embeddings = self._representer.encode_dataset(dataset)
        self._vectors = EntityRepresenter.embedding_lookup(embeddings)
        self._texts = serialized_lookup(dataset)
        sample = sample_labeled_pairs(
            dataset,
            train_fraction=self.train_fraction,
            valid_fraction=self.train_fraction,
            seed=self.seed,
        )
        # Random negatives are far easier than the nearest-neighbour candidates
        # seen at matching time, so augment the training split with hard
        # negatives: each positive's closest non-matching cross-source records.
        hard_negatives = self._hard_negatives(dataset, sample.train)
        train_pairs = list(sample.train) + hard_negatives
        train_features = np.stack([self._features(a, b) for a, b, _ in train_pairs])
        train_labels = np.array([1.0 if label else 0.0 for _, _, label in train_pairs])
        self._classifier.fit(train_features, train_labels)
        if self.calibrate_threshold and sample.valid:
            valid_features = np.stack([self._features(a, b) for a, b, _ in sample.valid])
            valid_labels = np.array([1.0 if label else 0.0 for _, _, label in sample.valid])
            self.threshold = self._best_threshold(
                self._classifier.predict_proba(valid_features), valid_labels
            )

    def _hard_negatives(
        self, dataset: MultiTableDataset, train_pairs: list
    ) -> list[tuple[EntityRef, EntityRef, bool]]:
        """Nearest non-matching cross-source neighbours of the training positives."""
        truth_pairs = dataset.truth_pairs()
        all_refs = [ref for ref in dataset.all_refs() if ref in self._vectors]
        if not all_refs:
            return []
        matrix = np.stack([self._vectors[ref] for ref in all_refs])
        index = BruteForceIndex(metric="cosine").build(matrix)
        positives = [a for a, _, label in train_pairs if label]
        if not positives:
            return []
        queries = np.stack([self._vectors[ref] for ref in positives])
        neighbor_indices, _ = index.query(queries, min(6, len(all_refs)))
        negatives: list[tuple[EntityRef, EntityRef, bool]] = []
        for anchor, neighbors in zip(positives, neighbor_indices):
            added = 0
            for neighbor in neighbors:
                if neighbor < 0 or added >= 2:
                    continue
                candidate = all_refs[int(neighbor)]
                if candidate == anchor or candidate.source == anchor.source:
                    continue
                pair = (min(anchor, candidate), max(anchor, candidate))
                if pair in truth_pairs:
                    continue
                negatives.append((anchor, candidate, False))
                added += 1
        return negatives

    @staticmethod
    def _best_threshold(probabilities: np.ndarray, labels: np.ndarray) -> float:
        """Pick the threshold maximizing F1 on the validation split."""
        best_threshold, best_f1 = 0.5, -1.0
        for threshold in np.linspace(0.3, 0.9, 13):
            predictions = probabilities >= threshold
            tp = float(np.sum(predictions & (labels > 0.5)))
            fp = float(np.sum(predictions & (labels <= 0.5)))
            fn = float(np.sum(~predictions & (labels > 0.5)))
            precision = tp / (tp + fp) if tp + fp else 0.0
            recall = tp / (tp + fn) if tp + fn else 0.0
            f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
            if f1 > best_f1:
                best_threshold, best_f1 = float(threshold), f1
        return best_threshold

    def _features(self, left: EntityRef, right: EntityRef) -> np.ndarray:
        return pair_features(
            self._vectors[left], self._vectors[right], self._texts[left], self._texts[right]
        )

    # ----------------------------------------------------------------- match
    def match_tables(self, left: Table, right: Table) -> list[MatchedPair]:
        if self._representer is None:
            raise DataError("prepare() must be called before match_tables()")
        if len(left) == 0 or len(right) == 0:
            return []
        # Tables are serialized and encoded directly (rather than via the
        # prepared ref lookup) so the chain driver's synthetic growing base
        # table works transparently; the caching encoder makes re-encoding
        # previously seen rows cheap.
        left_texts = serialize_table(left)
        right_texts = serialize_table(right)
        left_matrix = self._representer.encode_texts(left_texts)
        right_matrix = self._representer.encode_texts(right_texts)
        left_refs, right_refs = left.refs(), right.refs()
        index = BruteForceIndex(metric="cosine").build(right_matrix)
        neighbor_indices, _ = index.query(left_matrix, min(self.candidate_k, len(right_refs)))
        pairs: list[MatchedPair] = []
        for row, neighbors in enumerate(neighbor_indices):
            candidates = [int(n) for n in neighbors if n >= 0]
            if not candidates:
                continue
            features = np.stack(
                [
                    pair_features(
                        left_matrix[row], right_matrix[col], left_texts[row], right_texts[col]
                    )
                    for col in candidates
                ]
            )
            probabilities = self._classifier.predict_proba(features)
            for col, probability in zip(candidates, probabilities):
                if probability >= self.threshold:
                    pairs.append((left_refs[row], right_refs[col]))
        return pairs


class DittoMatcher(EmbeddingPairClassifier):
    """Ditto stand-in: vanilla fine-tuning behaviour.

    The decision threshold stays at the default 0.5-style operating point of a
    model fine-tuned on very little data, shifted low (0.3) to mirror the
    recall-heavy, precision-poor profile the paper reports for Ditto under
    the 5 % label budget (its recall substantially exceeds its precision in
    Table IV); the candidate pool is a wide top-5 per record.
    """

    name = "Ditto"

    def __init__(self, max_total_entities: int | None = 12_000, seed: int = 0) -> None:
        super().__init__(
            candidate_k=5,
            threshold=0.3,
            calibrate_threshold=False,
            max_total_entities=max_total_entities,
            seed=seed,
        )


class PromptEMMatcher(EmbeddingPairClassifier):
    """PromptEM stand-in: validation-calibrated threshold, wider candidate pool.

    The calibration split contains only randomly sampled (easy) negatives —
    the same low-resource protocol the paper uses — so the chosen threshold is
    slightly optimistic for the much harder nearest-neighbour candidates seen
    at matching time, reproducing PromptEM's recall-leaning behaviour.
    """

    name = "PromptEM"

    def __init__(self, max_total_entities: int | None = 12_000, seed: int = 0) -> None:
        super().__init__(
            candidate_k=5,
            threshold=0.5,
            calibrate_threshold=True,
            max_total_entities=max_total_entities,
            seed=seed,
        )
