"""Baseline matchers: two-table extensions, AutoFJ, MSCD-HAC/AP, supervised, ALMSER."""

from .almser import ALMSERGraphBoosted
from .autofj import AutoFuzzyJoin
from .common import jaccard, pair_features, serialized_lookup, vanilla_embeddings
from .extension import pairs_to_tuples, tuples_from_pair_lists
from .mscd import MSCDAP, MSCDHAC
from .supervised import DittoMatcher, EmbeddingPairClassifier, LogisticRegression, PromptEMMatcher
from .two_table import ChainMatchingDriver, MatchedPair, PairwiseMatchingDriver, TwoTableMatcher

__all__ = [
    "pairs_to_tuples",
    "tuples_from_pair_lists",
    "TwoTableMatcher",
    "MatchedPair",
    "PairwiseMatchingDriver",
    "ChainMatchingDriver",
    "AutoFuzzyJoin",
    "EmbeddingPairClassifier",
    "DittoMatcher",
    "PromptEMMatcher",
    "LogisticRegression",
    "MSCDHAC",
    "MSCDAP",
    "ALMSERGraphBoosted",
    "vanilla_embeddings",
    "pair_features",
    "jaccard",
    "serialized_lookup",
]
