"""Runtime and peak-memory profiling of matcher runs (Tables V and VI).

Peak memory is measured with :mod:`tracemalloc`, which tracks Python-level
allocations (including numpy buffers allocated through the Python allocator).
Absolute numbers are therefore not comparable with the paper's RSS-based
gigabyte figures, but the *relative* ordering of methods — which is what the
reproduction targets — is preserved.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ProfiledRun:
    """Outcome of profiling one callable."""

    value: object
    elapsed_seconds: float
    peak_memory_bytes: int

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / (1024 * 1024)


def profile_call(function: Callable[[], T]) -> ProfiledRun:
    """Run ``function`` once, measuring wall-clock time and peak memory."""
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    started = time.perf_counter()
    try:
        value = function()
    finally:
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
    return ProfiledRun(value=value, elapsed_seconds=elapsed, peak_memory_bytes=int(peak))


def format_duration(seconds: float) -> str:
    """Human format matching the paper's tables: ``6.1s`` / ``4.2m`` / ``1.3h``."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def format_memory(num_bytes: float) -> str:
    """Human format for memory: ``312.4M`` / ``1.2G``."""
    mb = num_bytes / (1024 * 1024)
    if mb < 1024:
        return f"{mb:.1f}M"
    return f"{mb / 1024:.2f}G"
