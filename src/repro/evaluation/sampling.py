"""Train/validation/test pair sampling for the supervised baselines.

The paper trains Ditto / PromptEM / ALMSER-GB on 5 % of the ground truth
(plus 5 % validation) and evaluates on the full ground truth mixed with ``P``
sampled mismatched pairs per true pair. This module reproduces that protocol
so the supervised stand-ins see the same kind of supervision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import MultiTableDataset
from ..data.entity import EntityRef
from ..exceptions import EvaluationError

#: A labeled pair: (left ref, right ref, is_match).
LabeledPair = tuple[EntityRef, EntityRef, bool]


@dataclass
class PairSample:
    """Labeled pair splits for the supervised baselines."""

    train: list[LabeledPair] = field(default_factory=list)
    valid: list[LabeledPair] = field(default_factory=list)
    test: list[LabeledPair] = field(default_factory=list)

    @property
    def num_train_positive(self) -> int:
        return sum(1 for _, _, label in self.train if label)


def _random_negative(
    dataset: MultiTableDataset,
    truth_pairs: set[tuple[EntityRef, EntityRef]],
    rng: np.random.Generator,
    all_refs: list[EntityRef],
) -> tuple[EntityRef, EntityRef]:
    """Sample a cross-source pair that is not a true match."""
    for _ in range(64):
        a = all_refs[int(rng.integers(0, len(all_refs)))]
        b = all_refs[int(rng.integers(0, len(all_refs)))]
        if a == b or a.source == b.source:
            continue
        pair = (min(a, b), max(a, b))
        if pair not in truth_pairs:
            return pair
    raise EvaluationError("could not sample a negative pair; dataset too dense")


def sample_labeled_pairs(
    dataset: MultiTableDataset,
    *,
    train_fraction: float = 0.05,
    valid_fraction: float = 0.05,
    negatives_per_positive: int = 5,
    test_negatives_per_positive: int = 10,
    seed: int = 0,
) -> PairSample:
    """Build the supervised-protocol splits from a dataset's ground truth.

    Args:
        dataset: labeled dataset.
        train_fraction / valid_fraction: fraction of true pairs used for
            training / validation (paper: 5 % each).
        negatives_per_positive: negative pairs sampled per training positive.
        test_negatives_per_positive: negative pairs per positive in the test
            split (a scaled-down version of the paper's P = 100/500).
        seed: sampling seed.
    """
    truth_pairs = sorted(dataset.truth_pairs())
    if not truth_pairs:
        raise EvaluationError("dataset has no ground-truth pairs to sample from")
    rng = np.random.default_rng(seed)
    all_refs = dataset.all_refs()
    truth_set = set(truth_pairs)

    order = rng.permutation(len(truth_pairs))
    num_train = max(1, int(round(train_fraction * len(truth_pairs))))
    num_valid = max(1, int(round(valid_fraction * len(truth_pairs))))
    train_idx = set(int(i) for i in order[:num_train])
    valid_idx = set(int(i) for i in order[num_train : num_train + num_valid])

    sample = PairSample()
    for i, pair in enumerate(truth_pairs):
        labeled: LabeledPair = (pair[0], pair[1], True)
        if i in train_idx:
            sample.train.append(labeled)
            for _ in range(negatives_per_positive):
                neg = _random_negative(dataset, truth_set, rng, all_refs)
                sample.train.append((neg[0], neg[1], False))
        elif i in valid_idx:
            sample.valid.append(labeled)
            for _ in range(negatives_per_positive):
                neg = _random_negative(dataset, truth_set, rng, all_refs)
                sample.valid.append((neg[0], neg[1], False))
        # Every true pair goes into the test split (the paper evaluates on the
        # entire ground truth).
        sample.test.append(labeled)
    for _ in range(min(len(truth_pairs) * test_negatives_per_positive, 200_000)):
        neg = _random_negative(dataset, truth_set, rng, all_refs)
        sample.test.append((neg[0], neg[1], False))
    return sample
