"""Evaluation: tuple/pair metrics, supervised sampling protocol, profiling, reports."""

from .metrics import (
    EvaluationReport,
    PrecisionRecallF1,
    evaluate,
    evaluate_tuples,
    pair_scores,
    tuple_scores,
)
from .profiler import ProfiledRun, format_duration, format_memory, profile_call
from .report import format_table, markdown_table
from .sampling import LabeledPair, PairSample, sample_labeled_pairs

__all__ = [
    "EvaluationReport",
    "PrecisionRecallF1",
    "evaluate",
    "evaluate_tuples",
    "tuple_scores",
    "pair_scores",
    "PairSample",
    "LabeledPair",
    "sample_labeled_pairs",
    "ProfiledRun",
    "profile_call",
    "format_duration",
    "format_memory",
    "format_table",
    "markdown_table",
]
