"""Plain-text report tables for the benchmark harness.

The experiment runners collect rows as dictionaries; this module turns them
into aligned text tables (the format the benchmark scripts print and that
EXPERIMENTS.md embeds).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
    missing: str = "-",
) -> str:
    """Render rows of dictionaries as an aligned, pipe-separated text table.

    Args:
        rows: the data; each row may omit columns (rendered as ``missing``).
        columns: column order; defaults to the keys of the first row.
        title: optional heading printed above the table.
        missing: placeholder for absent values.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_render(row.get(column, missing)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered:
        lines.append(" | ".join(value.ljust(width) for value, width in zip(line, widths)))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def markdown_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None, missing: str = "-"
) -> str:
    """Render rows as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_render(row.get(c, missing)) for c in columns) + " |")
    return "\n".join(lines)
