"""Evaluation metrics: tuple-level F1 and pair-level F1 (Section IV-A).

Two views of the same prediction are scored:

* **tuple metrics** — a predicted tuple counts as correct only when it equals
  a ground-truth tuple *exactly* (the paper's strict F1);
* **pair metrics** — tuples are expanded into entity pairs and scored as a
  set-overlap problem (the paper's looser "pair-F1"), which also allows
  comparison with two-table EM methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.result import MatchResult, tuples_to_pairs
from ..data.dataset import MatchTuple, MultiTableDataset
from ..data.entity import EntityRef
from ..exceptions import EvaluationError


@dataclass(frozen=True)
class PrecisionRecallF1:
    """A precision / recall / F1 triple (fractions in [0, 1])."""

    precision: float
    recall: float
    f1: float

    @staticmethod
    def from_counts(true_positives: int, num_predicted: int, num_truth: int) -> "PrecisionRecallF1":
        precision = true_positives / num_predicted if num_predicted else 0.0
        recall = true_positives / num_truth if num_truth else 0.0
        denominator = precision + recall
        f1 = 2 * precision * recall / denominator if denominator else 0.0
        return PrecisionRecallF1(precision, recall, f1)

    def as_percentages(self) -> tuple[float, float, float]:
        """The triple scaled to 0-100 (as reported in the paper's tables)."""
        return (100 * self.precision, 100 * self.recall, 100 * self.f1)


@dataclass(frozen=True)
class EvaluationReport:
    """Full evaluation of one prediction against one dataset's ground truth."""

    method: str
    dataset: str
    tuple_metrics: PrecisionRecallF1
    pair_metrics: PrecisionRecallF1
    num_predicted_tuples: int
    num_truth_tuples: int
    num_predicted_pairs: int
    num_truth_pairs: int

    @property
    def f1(self) -> float:
        """Tuple-level F1 as a percentage (the paper's headline "F1")."""
        return 100 * self.tuple_metrics.f1

    @property
    def pair_f1(self) -> float:
        """Pair-level F1 as a percentage (the paper's "pair-F1")."""
        return 100 * self.pair_metrics.f1

    def as_row(self) -> dict[str, object]:
        """Row for report tables (columns mirroring Table IV)."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "P": round(100 * self.tuple_metrics.precision, 1),
            "R": round(100 * self.tuple_metrics.recall, 1),
            "F1": round(self.f1, 1),
            "pair-F1": round(self.pair_f1, 1),
        }


def tuple_scores(
    predicted: Iterable[MatchTuple], truth: Iterable[MatchTuple]
) -> PrecisionRecallF1:
    """Exact-match tuple precision/recall/F1."""
    predicted_set = set(predicted)
    truth_set = set(truth)
    true_positives = len(predicted_set & truth_set)
    return PrecisionRecallF1.from_counts(true_positives, len(predicted_set), len(truth_set))


def pair_scores(
    predicted_pairs: Iterable[tuple[EntityRef, EntityRef]],
    truth_pairs: Iterable[tuple[EntityRef, EntityRef]],
) -> PrecisionRecallF1:
    """Pair-level precision/recall/F1 over canonical pair sets."""
    predicted_set = set(predicted_pairs)
    truth_set = set(truth_pairs)
    true_positives = len(predicted_set & truth_set)
    return PrecisionRecallF1.from_counts(true_positives, len(predicted_set), len(truth_set))


def evaluate_tuples(
    predicted: Iterable[MatchTuple],
    dataset: MultiTableDataset,
    *,
    method: str = "unknown",
) -> EvaluationReport:
    """Evaluate a raw set of predicted tuples against a dataset's ground truth."""
    predicted_set = set(predicted)
    if not dataset.ground_truth:
        raise EvaluationError(f"dataset {dataset.name!r} has no ground truth to evaluate against")
    known_refs = set(dataset.all_refs())
    for tup in predicted_set:
        unknown = [ref for ref in tup if ref not in known_refs]
        if unknown:
            raise EvaluationError(f"prediction references unknown entities: {unknown[:3]}")
    predicted_pairs = tuples_to_pairs(predicted_set)
    truth_pairs = dataset.truth_pairs()
    return EvaluationReport(
        method=method,
        dataset=dataset.name,
        tuple_metrics=tuple_scores(predicted_set, dataset.ground_truth),
        pair_metrics=pair_scores(predicted_pairs, truth_pairs),
        num_predicted_tuples=len(predicted_set),
        num_truth_tuples=len(dataset.ground_truth),
        num_predicted_pairs=len(predicted_pairs),
        num_truth_pairs=len(truth_pairs),
    )


def evaluate(result: MatchResult, dataset: MultiTableDataset) -> EvaluationReport:
    """Evaluate a :class:`MatchResult` (from MultiEM or any baseline)."""
    return evaluate_tuples(result.tuples, dataset, method=result.method)
