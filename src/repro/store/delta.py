"""Generic array deltas: diff a logical state against a base, replay it back.

A snapshot chain (:mod:`repro.store.format`) stores the *physical* segments;
this module defines what they mean. A delta file's manifest carries a spec
``{"arrays": {logical_name: op}}`` enumerating **every** logical array of the
reconstructed state, in order. Ops:

* ``{"op": "ref", "of": base_name}`` — unchanged; reuse the base's array
  (zero bytes stored). ``of`` may differ from the logical name (an LRU
  index-cache entry that moved slots still refs its old segment).
* ``{"op": "alias", "of": new_name}`` — this name shares the *same buffer*
  as another name of the new state (e.g. the integrated table's vector plane
  doubling as an index-cache entry's key matrix). Reconstruction binds the
  two names to one object, which is what lets compaction re-discover the
  writer's pointer-aliasing and keep the aliased-base size saving.
* ``{"op": "patch", "of": base_name, ...}`` — row-level delta: the new array
  extends the base (same dtype and trailing dims, at least as many rows);
  only the changed prefix rows, their indices, and the appended tail are
  stored (segments ``<name>#d/rows``, ``<name>#d/idx``, ``<name>#d/tail``).
  Rows are compared as raw bytes, so NaNs and negative zeros are exact.
* ``{"op": "full"}`` — stored outright under the logical name (fallback for
  new, reshaped, shrunk, or mostly-rewritten arrays — chosen automatically
  whenever a patch would not be smaller).

:func:`diff_bundle` produces the spec plus the physical segments from the
new state's ordered arrays, the base state's arrays, and an optional
``pairing`` (new name → base name) for arrays whose identity moved;
:func:`apply_bundle` replays a spec over the base arrays and yields the new
state byte-for-byte, which is what makes base → delta → load equivalent to a
single full snapshot.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..exceptions import StoreError

#: Segment-name suffixes of one row-patch (changed rows, their indices, tail).
_PATCH_SUFFIXES = ("#d/rows", "#d/idx", "#d/tail")

#: Per-segment overhead estimate (alignment padding + manifest entry) used
#: when deciding whether a patch actually beats storing the array outright.
_SEGMENT_OVERHEAD = 96


def _byte_rows(array: np.ndarray) -> np.ndarray:
    """``(rows, row_bytes)`` uint8 view of a C-contiguous array."""
    rows = array.shape[0]
    if array.size == 0:
        return np.zeros((rows, 0), dtype=np.uint8)
    return np.ascontiguousarray(array).view(np.uint8).reshape(rows, -1)


def bytes_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact byte equality (shape + dtype + raw bytes; NaN-safe)."""
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    a_flat = np.ascontiguousarray(a).reshape(-1).view(np.uint8)
    b_flat = np.ascontiguousarray(b).reshape(-1).view(np.uint8)
    return bool(np.array_equal(a_flat, b_flat))


def changed_rows(new_prefix: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Indices of rows whose raw bytes differ between two same-shape arrays."""
    if new_prefix.shape != base.shape:
        raise StoreError("changed_rows requires equally-shaped arrays")
    if new_prefix.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    differs = np.any(_byte_rows(new_prefix) != _byte_rows(base), axis=1)
    return np.flatnonzero(differs).astype(np.int64, copy=False)


def diff_array(
    new: np.ndarray, base: np.ndarray | None
) -> tuple[dict, "dict[str, np.ndarray]"]:
    """Delta op for one array: ``(spec, segments)`` (segments keyed by suffix).

    ``base=None`` (or an incompatible base) falls back to ``full``; a
    byte-identical base yields ``ref``; otherwise a row patch is produced
    unless storing the array outright would be at least as small.
    """
    new = np.ascontiguousarray(new)
    if (
        base is None
        or new.ndim == 0
        or base.ndim != new.ndim
        or base.dtype != new.dtype
        or base.shape[1:] != new.shape[1:]
        or base.shape[0] > new.shape[0]
    ):
        return {"op": "full"}, {"": new}
    base = np.ascontiguousarray(base)
    base_rows = base.shape[0]
    changed = changed_rows(new[:base_rows], base)
    if base_rows == new.shape[0] and changed.size == 0:
        return {"op": "ref"}, {}
    row_bytes = new.itemsize * int(np.prod(new.shape[1:], dtype=np.int64)) if new.ndim > 1 else new.itemsize
    tail = new[base_rows:]
    patch_cost = (
        changed.size * (row_bytes + changed.itemsize)
        + tail.shape[0] * row_bytes
        + len(_PATCH_SUFFIXES) * _SEGMENT_OVERHEAD
    )
    if patch_cost >= new.nbytes + _SEGMENT_OVERHEAD:
        return {"op": "full"}, {"": new}
    spec = {
        "op": "patch",
        "dtype": new.dtype.str,
        "shape": list(new.shape),
        "base_rows": int(base_rows),
    }
    segments = {
        "#d/rows": np.ascontiguousarray(new[changed]),
        "#d/idx": changed,
        "#d/tail": tail,
    }
    return spec, segments


def apply_array(
    spec: dict, base: np.ndarray | None, segment: Callable[[str], np.ndarray]
) -> np.ndarray:
    """Inverse of :func:`diff_array` for one ``full``/``ref``/``patch`` op."""
    op = spec["op"]
    if op == "full":
        return segment("")
    if op == "ref":
        if base is None:
            raise StoreError("delta refs a base array that does not exist")
        return base
    if op != "patch":
        raise StoreError(f"unknown delta op {op!r}")
    if base is None:
        raise StoreError("delta patches a base array that does not exist")
    shape = tuple(spec["shape"])
    base_rows = int(spec["base_rows"])
    if base.shape[0] != base_rows or base.shape[1:] != shape[1:]:
        raise StoreError(
            f"delta patch expects a base of shape {(base_rows, *shape[1:])}, "
            f"got {base.shape}"
        )
    out = np.empty(shape, dtype=np.dtype(spec["dtype"]))
    out[:base_rows] = base
    idx = segment("#d/idx")
    if idx.size:
        out[idx] = segment("#d/rows")
    tail = segment("#d/tail")
    if tail.shape[0]:
        out[base_rows:] = tail
    out.flags.writeable = False
    return out


def diff_bundle(
    new_arrays: "Mapping[str, np.ndarray]",
    base_arrays: "Mapping[str, np.ndarray]",
    *,
    pairing: "Mapping[str, str] | None" = None,
) -> tuple[dict, "dict[str, np.ndarray]"]:
    """Diff an ordered logical state against a base state.

    Returns ``(spec, segments)``: the manifest ``delta`` tree (``{"arrays":
    {name: op}}``, enumerating every logical name of ``new_arrays`` in
    order) and the physical segments to store. Names sharing one buffer in
    the new state collapse to one canonical diff plus ``alias`` ops, exactly
    mirroring :class:`~repro.store.format.SnapshotWriter`'s pointer dedup.
    ``pairing`` redirects a logical name to a differently-named base array.
    """
    pairing = dict(pairing or {})
    specs: dict[str, dict] = {}
    segments: dict[str, np.ndarray] = {}
    by_buffer: dict[tuple, str] = {}
    base_by_content_key: dict[tuple, list[str]] = {}
    for base_name, base_array in base_arrays.items():
        key = (base_array.dtype.str, base_array.shape)
        base_by_content_key.setdefault(key, []).append(base_name)
    for name, array in new_arrays.items():
        array = np.ascontiguousarray(array)
        buffer_key = (
            array.__array_interface__["data"][0],
            array.dtype.str,
            array.shape,
        )
        canonical = by_buffer.get(buffer_key)
        if canonical is not None:
            specs[name] = {"op": "alias", "of": canonical}
            continue
        by_buffer[buffer_key] = name
        base_name = pairing.get(name, name)
        spec, array_segments = diff_array(array, base_arrays.get(base_name))
        if spec["op"] in ("ref", "patch"):
            spec["of"] = base_name
        elif spec["op"] == "full":
            # Content fallback: an array that moved names entirely — e.g.
            # the pre-merge integrated plane resurfacing as a new
            # index-cache entry's key matrix — still refs any byte-identical
            # base segment instead of being stored again.
            for candidate in base_by_content_key.get((array.dtype.str, array.shape), ()):
                if bytes_equal(array, base_arrays[candidate]):
                    spec = {"op": "ref", "of": candidate}
                    array_segments = {}
                    break
        specs[name] = spec
        for suffix, segment in array_segments.items():
            segments[name + suffix] = segment
    return {"arrays": specs}, segments


def apply_bundle(
    delta: dict,
    base_arrays: "Mapping[str, np.ndarray]",
    segment_of: Callable[[str], np.ndarray],
) -> "dict[str, np.ndarray]":
    """Replay a :func:`diff_bundle` spec over the base state.

    ``segment_of`` resolves a physical segment name (usually
    ``snapshot.array``). Returns the reconstructed logical arrays, ordered as
    the spec enumerates them; ``alias`` entries are bound to the *same
    object* as their target so pointer-aliasing survives reconstruction.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, spec in delta["arrays"].items():
        if spec["op"] == "alias":
            target = spec["of"]
            if target not in arrays:
                raise StoreError(f"delta aliases {name!r} to unknown name {target!r}")
            arrays[name] = arrays[target]
            continue
        base = base_arrays.get(spec.get("of", name))
        arrays[name] = apply_array(spec, base, lambda suffix: segment_of(name + suffix))
    return arrays


def snapshot_arrays(snapshot) -> "dict[str, np.ndarray]":
    """All logical arrays of one snapshot, manifest aliases bound to one object.

    Unlike calling ``snapshot.array`` per name, aliased entries come back as
    the *same* array object as their canonical segment (even in copy mode),
    so pointer-aliasing survives a load → diff or load → re-save round trip.
    """
    alias_of = snapshot.alias_map()
    arrays: dict[str, np.ndarray] = {}
    for name in snapshot.names():
        canonical = alias_of.get(name)
        if canonical is not None and canonical in arrays:
            arrays[name] = arrays[canonical]
        else:
            arrays[name] = snapshot.array(name)
    return arrays


def resolve_chain_arrays(chain) -> "dict[str, np.ndarray]":
    """Fold a :class:`~repro.store.format.SnapshotChain` into logical arrays.

    The base contributes its segments directly (manifest aliases bound to
    one object, preserving pointer equality even in copy mode); each delta
    then rewrites the mapping through :func:`apply_bundle`. The result is
    byte-for-byte the array set a single full snapshot of the tip state
    would hold.
    """
    arrays = snapshot_arrays(chain.base)
    for snapshot in chain.snapshots[1:]:
        if snapshot.delta is None:
            raise StoreError(
                f"chain segment {snapshot.path!r} has a parent link but no delta spec"
            )
        arrays = apply_bundle(snapshot.delta, arrays, snapshot.array)
    return arrays
