"""Load-and-serve matching: snapshot a fitted pipeline, restore, keep matching.

:func:`save_session` writes the complete fitted state of an
:class:`~repro.core.incremental.IncrementalMultiEM` — pipeline config, the
fitted encoder (IDF vocabulary / SVD basis), the integrated
:class:`~repro.core.merging.ItemTable`, the
:class:`~repro.core.representation.EmbeddingStore`, and the live
:class:`~repro.ann.cache.IndexCache` — into one snapshot file.
:class:`MatchSession` (or :func:`load_matcher`) restores it without
re-running any pipeline stage: with ``mmap=True`` every vector plane is a
zero-copy view over the mapped file, so a cold process starts answering
``match_new_table`` / ``query`` calls in the time it takes to parse the
manifest.

Restores are exact: the snapshot records content digests of the integrated
table and the embedding store at save time, ``load`` re-derives and verifies
them (``verify=False`` to skip), and a restored matcher's ``add_table``
produces byte-for-byte the tuples the in-memory matcher would have — pinned
by ``tests/store/test_session.py``.

Sessions also persist **incrementally**: after a full save (or load), the
matcher remembers its on-disk base, and :func:`save_session_delta` writes
only what changed since — a chain segment next to the base (see
:mod:`repro.store.format` for the chain layout and :mod:`repro.store.delta`
for the diff ops). ``load_matcher`` / :meth:`MatchSession.load` accept a
chain tip transparently: the chain is resolved, link digests verified, and
the reconstructed state is byte-identical to a single full snapshot of the
same matcher — which :func:`compact_session` can then write out, collapsing
any chain back into one self-contained, buffer-aliased base file.
"""

from __future__ import annotations

import logging
import os

import numpy as np

from ..core.incremental import IncrementalMultiEM
from ..data.table import Table
from ..exceptions import StoreError
from . import codecs
from .delta import diff_bundle, resolve_chain_arrays, snapshot_arrays
from .format import DeltaWriter, Snapshot, SnapshotChain, SnapshotWriter
from .fsck import deepest_intact, sweep_partials, write_retirement_marker
from .lock import StoreLock

logger = logging.getLogger("repro.store")

#: Snapshot meta ``"type"`` marker for session snapshots.
SESSION_TYPE = "multiem_session"


def _store_dir(path) -> str:
    return os.path.dirname(os.path.abspath(os.fspath(path))) or "."


def session_state_bundle(state) -> "tuple[dict, dict[str, np.ndarray]]":
    """Flatten a matcher's ``snapshot_state`` into ``(bundle_metas, arrays)``.

    ``arrays`` is the ordered flat logical-array mapping every save path
    (full, delta, compacted) works over — ``table/…``, ``store/…``,
    ``encoder/…``, ``cache/…`` — and ``bundle_metas`` holds the four bundle
    meta trees (``cache`` is ``None`` when the matcher runs cacheless), each
    carrying its ``__arrays__`` name list.
    """
    parts = [
        ("table", "table/", codecs.item_table_state(state["table"])),
        ("store", "store/", codecs.embedding_store_state(state["store"])),
        ("encoder", "encoder/", codecs.encoder_state(state["encoder"])),
    ]
    if state["index_cache"] is not None:
        parts.append(("cache", "cache/", codecs.index_cache_state(state["index_cache"])))
    if state.get("item_owners") is not None:
        merging = state["config"].merging
        parts.append(
            (
                "shard",
                "shard/",
                codecs.shard_plan_state(
                    state["item_owners"], merging.shards, merging.shard_key
                ),
            )
        )
    metas: dict = {"cache": None, "shard": None}
    arrays: dict = {}
    for key, prefix, (meta, bundle) in parts:
        meta = dict(meta)
        meta["__arrays__"] = list(bundle)
        metas[key] = meta
        for name, array in bundle.items():
            arrays[prefix + name] = array
    return metas, arrays


def _session_meta(state, metas: dict, digests: dict) -> dict:
    # Key order is part of the byte-pinned manifest; do not reorder. The
    # "shard" key is appended last and only for sharded fits, so unsharded
    # snapshot bytes are unchanged by the sharding feature.
    meta = {
        "type": SESSION_TYPE,
        "config": codecs.config_to_meta(state["config"]),
        "attributes": list(state["attributes"]),
        "schema": list(state["schema"]),
        "known_sources": list(state["known_sources"]),
        "digests": digests,
        "table": metas["table"],
        "store": metas["store"],
        "encoder": metas["encoder"],
        "cache": metas["cache"],
    }
    if metas.get("shard") is not None:
        meta["shard"] = metas["shard"]
    return meta


def _state_digests(state) -> dict:
    return {
        "item_table": codecs.item_table_digest(state["table"]),
        "embedding_store": codecs.embedding_store_digest(state["store"]),
    }


def _record_base(matcher: IncrementalMultiEM, path, meta: dict, arrays: dict, depth: int) -> None:
    """Remember the matcher's on-disk base so the next save can emit a delta.

    Captured by reference, not by re-reading the file: the pipeline never
    mutates published arrays (stores append blocks, caches clone before
    extending, merges build fresh arrays), so the captured objects stay the
    exact bytes the snapshot holds. Snapshots without a recorded payload
    digest (pre-chain files) cannot anchor a chain, so no base is recorded.
    """
    payload = (meta.get("digests") or {}).get("payload")
    matcher._base = (
        None
        if payload is None
        else {
            "path": os.path.abspath(os.fspath(path)),
            "payload": payload,
            "depth": int(depth),
            "meta": meta,
            "arrays": dict(arrays),
        }
    )


def save_session(matcher: IncrementalMultiEM, path) -> dict:
    """Write a fitted matcher's full state to ``path``; returns the digest record."""
    state = matcher.snapshot_state()
    metas, arrays = session_state_bundle(state)
    writer = SnapshotWriter(segment_digests=True)
    for name, array in arrays.items():
        writer.add_array(name, array)
    digests = _state_digests(state)
    # Whole-payload digest: every segment of every embedded object
    # (encoder, index cache, config arrays included), so load-time
    # verification covers the entire snapshot, not just the two core
    # structures whose object-level digests are reported above.
    digests["payload"] = writer.payload_digest()
    meta = _session_meta(state, metas, digests)
    writer.set_meta(meta)
    with StoreLock(_store_dir(path)):
        writer.save(path)
    _record_base(matcher, path, meta, arrays, depth=0)
    return digests


def save_session_delta(matcher: IncrementalMultiEM, path) -> dict:
    """Write only what changed since the matcher's recorded base snapshot.

    Produces a chain segment next to the base (parents resolve by basename):
    unchanged arrays become zero-byte refs, the integrated table's vector
    plane row-patches, carried-over index-cache entries ref their old
    segments even after LRU reordering. The manifest still carries the
    *complete* session meta plus the reconstructed-state digests, so a chain
    tip describes the whole logical state. Returns the digest record.
    """
    base = getattr(matcher, "_base", None)
    if base is None:
        raise StoreError("matcher has no base snapshot; save a full session first")
    path_abs = os.path.abspath(os.fspath(path))
    if path_abs == base["path"]:
        raise StoreError("a delta cannot overwrite its own base; use a sibling path")
    if os.path.dirname(path_abs) != os.path.dirname(base["path"]):
        raise StoreError(
            "a delta must be written next to its base "
            f"(base lives at {base['path']!r}); parents resolve by basename"
        )
    state = matcher.snapshot_state()
    metas, arrays = session_state_bundle(state)
    pairing: dict = {}
    if metas["cache"] is not None and base["meta"].get("cache") is not None:
        new_cache = {n[len("cache/"):]: a for n, a in arrays.items() if n.startswith("cache/")}
        base_cache = {
            n[len("cache/"):]: a for n, a in base["arrays"].items() if n.startswith("cache/")
        }
        entry_pairing = codecs.index_cache_pairing(
            (metas["cache"], new_cache), (base["meta"]["cache"], base_cache)
        )
        pairing = {"cache/" + new: "cache/" + old for new, old in entry_pairing.items()}
    spec, segments = diff_bundle(arrays, base["arrays"], pairing=pairing)
    writer = DeltaWriter(
        base["path"], base["payload"], base["depth"] + 1, segment_digests=True
    )
    for name, segment in segments.items():
        writer.add_array(name, segment)
    writer.set_delta(spec)
    digests = _state_digests(state)
    # Over this file's own segments only; parent payloads are covered by the
    # chain links (each child records the payload digest it was diffed
    # against, re-checked by SnapshotChain.verify_links).
    digests["payload"] = writer.payload_digest()
    meta = _session_meta(state, metas, digests)
    writer.set_meta(meta)
    with StoreLock(_store_dir(path)):
        writer.save(path)
    _record_base(matcher, path, meta, arrays, depth=base["depth"] + 1)
    return digests


def _restore_state(
    meta, arrays, *, verify: bool, payload_digest
) -> IncrementalMultiEM:
    """Rehydrate a matcher from a session meta tree plus flat logical arrays.

    ``payload_digest`` is a zero-arg callable deriving the digest to check
    against the recorded one (only invoked when ``verify`` needs it).
    """
    if not isinstance(meta, dict) or meta.get("type") != SESSION_TYPE:
        raise StoreError("snapshot does not hold a MultiEM session")
    table = codecs.item_table_from_state(
        meta["table"], codecs.unpack_arrays(arrays, "table/", meta["table"])
    )
    store = codecs.embedding_store_from_state(
        meta["store"], codecs.unpack_arrays(arrays, "store/", meta["store"])
    )
    if verify:
        recorded = meta["digests"]
        derived = {
            "item_table": codecs.item_table_digest(table),
            "embedding_store": codecs.embedding_store_digest(store),
        }
        if "payload" in recorded:
            derived["payload"] = payload_digest()
        if derived != recorded:
            raise StoreError(
                f"snapshot digests do not match its contents: recorded {recorded}, "
                f"derived {derived} (corrupted or truncated file)"
            )
    encoder = codecs.encoder_from_state(
        meta["encoder"], codecs.unpack_arrays(arrays, "encoder/", meta["encoder"])
    )
    cache = None
    if meta.get("cache") is not None:
        cache = codecs.index_cache_from_state(
            meta["cache"], codecs.unpack_arrays(arrays, "cache/", meta["cache"])
        )
    item_owners = None
    if meta.get("shard") is not None:
        item_owners = codecs.shard_plan_from_state(
            meta["shard"], codecs.unpack_arrays(arrays, "shard/", meta["shard"])
        )
    return IncrementalMultiEM.from_snapshot_state(
        config=codecs.config_from_meta(meta["config"]),
        encoder=encoder,
        attributes=tuple(meta["attributes"]),
        schema=tuple(meta["schema"]),
        table=table,
        store=store,
        known_sources=meta["known_sources"],
        index_cache=cache,
        item_owners=item_owners,
    )


def _restore(snapshot: Snapshot, *, verify: bool) -> IncrementalMultiEM:
    if snapshot.chain is not None:
        raise StoreError(
            "this snapshot is a chain delta; open it through MatchSession.load / "
            "load_matcher (or SnapshotChain) so its ancestry is resolved"
        )
    return _restore_state(
        snapshot.meta,
        snapshot_arrays(snapshot),
        verify=verify,
        payload_digest=snapshot.payload_digest,
    )


def _open_chain_once(path, *, mmap: bool, verify: bool):
    chain = SnapshotChain.open(path, mmap=mmap)
    try:
        if verify and chain.depth > 0:
            chain.verify_links()
        arrays = resolve_chain_arrays(chain)
        meta = chain.meta
        matcher = _restore_state(
            meta, arrays, verify=verify, payload_digest=chain.tip.payload_digest
        )
        _record_base(matcher, chain.paths[-1], meta, arrays, depth=chain.depth)
        return matcher, meta
    finally:
        if not mmap:
            chain.close()


def _open_chain_session(path, *, mmap: bool, verify: bool, allow_rollback: bool = False):
    """Open a snapshot (or chain tip), restore the matcher; ``(matcher, meta)``.

    Opening first sweeps partial files left by provably-dead writers (a live
    writer's in-flight temp is never touched). With ``allow_rollback=True``,
    a tip that fails to open or verify falls back to its deepest intact
    ancestor (:func:`repro.store.fsck.deepest_intact`) — an explicit opt-in,
    because it silently serves older state.
    """
    sweep_partials(_store_dir(path))
    try:
        return _open_chain_once(path, mmap=mmap, verify=verify)
    except StoreError:
        if not allow_rollback:
            raise
        fallback = deepest_intact(path)
        if fallback is None or os.path.abspath(fallback) == os.path.abspath(
            os.fspath(path)
        ):
            raise
        logger.warning(
            "snapshot %s failed to load; rolling back to deepest intact ancestor %s",
            os.fspath(path),
            fallback,
        )
        return _open_chain_once(fallback, mmap=mmap, verify=verify)


def load_matcher(
    path, *, mmap: bool = True, verify: bool = True, allow_rollback: bool = False
) -> IncrementalMultiEM:
    """Restore a fitted :class:`IncrementalMultiEM` from a session snapshot.

    ``path`` may be a base snapshot or any chain delta: the whole ancestry
    is resolved and folded, and the restored state is byte-identical to a
    single full snapshot of the same matcher. With ``mmap=True`` the
    matcher's arrays stay backed by the mapped file(s) (zero copies,
    read-only); the mappings live as long as the arrays do. ``verify=True``
    re-derives and checks the recorded content digests — chain link digests
    included. ``allow_rollback=True`` falls back to the deepest intact
    ancestor when the tip is damaged (explicit opt-in: it serves older
    state).
    """
    matcher, _ = _open_chain_session(
        path, mmap=mmap, verify=verify, allow_rollback=allow_rollback
    )
    return matcher


def compact_session(
    path, out_path, *, mmap: bool = True, verify: bool = True, retire: bool = False
) -> dict:
    """Collapse the chain ending at ``path`` into one base file at ``out_path``.

    The output is a self-contained session snapshot, byte-identical to the
    full snapshot the tip matcher would have saved directly — buffer
    aliasing included, because chain reconstruction binds aliased segments
    back to single objects. The source chain is left untouched; with
    ``retire=True`` (chain and output in the same directory) a retirement
    marker is written next to the output naming the superseded chain files,
    which authorizes a later ``gc_store`` pass to delete them once the
    compacted file re-verifies. Returns the digest record of the compacted
    snapshot.
    """
    out_abs = os.path.abspath(os.fspath(out_path))
    with StoreLock(_store_dir(out_path)):
        chain = SnapshotChain.open(path, mmap=mmap)
        try:
            if any(os.path.abspath(p) == out_abs for p in chain.paths):
                raise StoreError(
                    "refusing to compact onto a live chain member; write to a fresh "
                    "path, then retire the old chain"
                )
            superseded: dict[str, str] = {}
            if retire:
                chain_dir = os.path.dirname(os.path.abspath(chain.paths[0])) or "."
                if chain_dir != _store_dir(out_path):
                    raise StoreError(
                        "retire=True requires the compacted output to live in the "
                        f"chain's own directory ({chain_dir!r}); markers and gc are "
                        "per-directory"
                    )
                superseded = {
                    os.path.basename(p): snapshot.payload_digest()
                    for p, snapshot in zip(chain.paths, chain.snapshots)
                }
            if verify and chain.depth > 0:
                chain.verify_links()
            matcher = _restore_state(
                chain.meta,
                resolve_chain_arrays(chain),
                verify=verify,
                payload_digest=chain.tip.payload_digest,
            )
        finally:
            if not mmap:
                chain.close()
        try:
            digests = save_session(matcher, out_path)
        finally:
            matcher.close()
        if retire:
            write_retirement_marker(out_abs, digests["payload"], superseded)
        return digests


class _QueryContext:
    """Per-session query plumbing, resolved once instead of per request.

    ``MatchSession.query`` used to rebuild the merging config's
    ``index_kwargs`` dict, re-import the backend registry, and re-resolve the
    backend + cache params key on **every** call — pure Python dispatch that
    dwarfs the actual native re-rank once a coalescer drives thousands of
    requests through the session. This object hoists all of it: the encoder
    handle, the kwargs dict, the default distance cutoff, and a per-table-size
    memo of the resolved backend's cache params key (backend resolution is a
    function of the row count alone, which only changes on ``add_table``).
    """

    __slots__ = (
        "representer",
        "merging",
        "cache",
        "index_kwargs",
        "default_max_distance",
        "_resolved",
    )

    def __init__(self, matcher: IncrementalMultiEM) -> None:
        assert matcher._representer is not None
        self.representer = matcher._representer
        merging = matcher.config.merging
        self.merging = merging
        self.cache = matcher._index_cache
        self.default_max_distance = merging.m
        self.index_kwargs = {
            "hnsw_max_degree": merging.hnsw_max_degree,
            "hnsw_ef_construction": merging.hnsw_ef_construction,
            "hnsw_ef_search": merging.hnsw_ef_search,
            "lsh_num_tables": merging.lsh_num_tables,
            "lsh_num_bits": merging.lsh_num_bits,
            "lsh_probe_neighbors": merging.lsh_probe_neighbors,
            "kernel_threads": merging.kernel_threads,
            "quantized_scan": merging.quantized_scan,
            "seed": merging.seed,
        }
        self._resolved: dict[int, str] = {}

    def index_for(self, table):
        """The query index over ``table.vectors`` (cache-hit when possible)."""
        from ..ann.cache import index_params_key
        from ..ann.mutual import create_index, resolve_backend

        merging = self.merging
        size = int(table.vectors.shape[0])

        def build():
            return create_index(
                merging.index,
                merging.metric,
                size_hint=size,
                brute_force_limit=merging.brute_force_limit,
                **self.index_kwargs,
            ).build(table.vectors)

        if self.cache is None:
            return build()
        # Same params key the merge stage uses, so a query content-hits the
        # index a previous merge (or query) already built. Resolution is
        # memoized by row count — the only input that varies per session.
        params_key = self._resolved.get(size)
        if params_key is None:
            resolved = resolve_backend(merging.index, size, merging.brute_force_limit)
            params_key = index_params_key(resolved, merging.metric, self.index_kwargs)
            self._resolved[size] = params_key
        return self.cache.get_or_build(table.vectors, build, params_key=params_key)


class MatchSession:
    """A restored pipeline serving match and nearest-tuple queries.

    Wraps the rehydrated :class:`IncrementalMultiEM` with the two serving
    calls a snapshot exists for; the underlying matcher stays available as
    :attr:`matcher` for anything else (evaluation, further snapshots).
    """

    def __init__(self, matcher: IncrementalMultiEM, digests: dict | None = None) -> None:
        self.matcher = matcher
        self.digests = dict(digests or {})
        self._query_context: _QueryContext | None = None

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot, *, verify: bool = True) -> "MatchSession":
        """Build a session over an already-open :class:`Snapshot`.

        Lets a caller that needs the raw manifest (array names, payload
        size) open the file once and reuse the same mapping for the restore
        instead of parsing it twice.
        """
        matcher = _restore(snapshot, verify=verify)
        meta = snapshot.meta
        return cls(matcher, meta.get("digests") if isinstance(meta, dict) else None)

    @classmethod
    def load(
        cls,
        path,
        *,
        mmap: bool = True,
        verify: bool = True,
        allow_rollback: bool = False,
    ) -> "MatchSession":
        """Open a session snapshot or chain tip (see :func:`load_matcher`)."""
        matcher, meta = _open_chain_session(
            path, mmap=mmap, verify=verify, allow_rollback=allow_rollback
        )
        return cls(matcher, meta.get("digests") if isinstance(meta, dict) else None)

    # ------------------------------------------------------------- serving
    def match_new_table(self, table: Table):
        """Fold one new source table into the restored state (no refit).

        Exactly :meth:`IncrementalMultiEM.add_table` — one two-table merge
        against the integrated table plus a pruning pass — and byte-for-byte
        the result the never-snapshotted matcher would return.
        """
        return self.matcher.add_table(table)

    def query(self, texts, k: int = 1, max_distance: float | None = None):
        """Nearest integrated tuples for raw serialized texts.

        Encodes ``texts`` with the restored encoder and searches the
        integrated table with the configured ANN backend (through the
        restored index cache, so repeated queries — and a cache warmed by a
        previous ``add_table`` — never rebuild the index). Returns one list
        per text of ``(members, distance)`` pairs, nearest first; pairs
        beyond ``max_distance`` (default: the merging threshold ``m``) are
        dropped. A thin alias of :meth:`query_many`.
        """
        return self.query_many(texts, k=k, max_distance=max_distance)

    def query_many(self, texts, k: int = 1, max_distance: float | None = None):
        """Batched nearest-tuple lookup; per-text answers are batch-invariant.

        The serving plane's hot path: all per-session config plumbing lives
        in a prepared :class:`_QueryContext` built on first use, and the
        index query goes through :func:`repro.ann.engine.query_rows`, whose
        contract is that each text's answer is bit-identical however the
        batch is composed. That is what lets the request coalescer fold
        concurrent requests into one ``encode_texts`` + one index query and
        slice per-request results back out byte-identically (pinned by
        ``tests/serve/test_coalescer.py``).
        """
        table = self.matcher.integrated_table
        if len(table) == 0:
            return [[] for _ in texts]
        context = self._query_context
        if context is None:
            context = self._query_context = _QueryContext(self.matcher)
        if max_distance is None:
            max_distance = context.default_max_distance
        vectors = context.representer.encode_texts(list(texts))
        index = context.index_for(table)
        from ..ann.engine import query_rows

        indices, distances = query_rows(index, vectors, k)
        from ..data.entity import EntityRef

        def members_of(item: int) -> tuple:
            start, stop = int(table.member_offsets[item]), int(table.member_offsets[item + 1])
            return tuple(
                EntityRef(table.sources[int(sid)], int(idx))
                for sid, idx in zip(
                    table.member_sources[start:stop], table.member_indices[start:stop]
                )
            )

        results = []
        for row in range(indices.shape[0]):
            hits = []
            for slot in range(indices.shape[1]):
                item = int(indices[row, slot])
                dist = float(distances[row, slot])
                if item < 0 or not np.isfinite(dist) or dist > max_distance:
                    continue
                hits.append((members_of(item), dist))
            results.append(hits)
        return results

    # ------------------------------------------------------------ plumbing
    @property
    def known_sources(self) -> tuple[str, ...]:
        return self.matcher.known_sources

    def close(self) -> None:
        """Release the matcher's worker pools (the mapping follows its arrays)."""
        self.matcher.close()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
