"""Load-and-serve matching: snapshot a fitted pipeline, restore, keep matching.

:func:`save_session` writes the complete fitted state of an
:class:`~repro.core.incremental.IncrementalMultiEM` — pipeline config, the
fitted encoder (IDF vocabulary / SVD basis), the integrated
:class:`~repro.core.merging.ItemTable`, the
:class:`~repro.core.representation.EmbeddingStore`, and the live
:class:`~repro.ann.cache.IndexCache` — into one snapshot file.
:class:`MatchSession` (or :func:`load_matcher`) restores it without
re-running any pipeline stage: with ``mmap=True`` every vector plane is a
zero-copy view over the mapped file, so a cold process starts answering
``match_new_table`` / ``query`` calls in the time it takes to parse the
manifest.

Restores are exact: the snapshot records content digests of the integrated
table and the embedding store at save time, ``load`` re-derives and verifies
them (``verify=False`` to skip), and a restored matcher's ``add_table``
produces byte-for-byte the tuples the in-memory matcher would have — pinned
by ``tests/store/test_session.py``.
"""

from __future__ import annotations

import numpy as np

from ..core.incremental import IncrementalMultiEM
from ..data.table import Table
from ..exceptions import StoreError
from . import codecs
from .format import Snapshot, SnapshotWriter

#: Snapshot meta ``"type"`` marker for session snapshots.
SESSION_TYPE = "multiem_session"


def save_session(matcher: IncrementalMultiEM, path) -> dict:
    """Write a fitted matcher's state to ``path``; returns the digest record."""
    state = matcher.snapshot_state()
    writer = SnapshotWriter()
    table_meta = codecs.pack(writer, "table/", codecs.item_table_state(state["table"]))
    store_meta = codecs.pack(writer, "store/", codecs.embedding_store_state(state["store"]))
    encoder_meta = codecs.pack(writer, "encoder/", codecs.encoder_state(state["encoder"]))
    cache_meta = None
    if state["index_cache"] is not None:
        cache_meta = codecs.pack(writer, "cache/", codecs.index_cache_state(state["index_cache"]))
    digests = {
        "item_table": codecs.item_table_digest(state["table"]),
        "embedding_store": codecs.embedding_store_digest(state["store"]),
        # Whole-payload digest: every segment of every embedded object
        # (encoder, index cache, config arrays included), so load-time
        # verification covers the entire snapshot, not just the two core
        # structures whose object-level digests are reported above.
        "payload": writer.payload_digest(),
    }
    writer.set_meta(
        {
            "type": SESSION_TYPE,
            "config": codecs.config_to_meta(state["config"]),
            "attributes": list(state["attributes"]),
            "schema": list(state["schema"]),
            "known_sources": list(state["known_sources"]),
            "digests": digests,
            "table": table_meta,
            "store": store_meta,
            "encoder": encoder_meta,
            "cache": cache_meta,
        }
    )
    writer.save(path)
    return digests


def _restore(snapshot: Snapshot, *, verify: bool) -> IncrementalMultiEM:
    meta = snapshot.meta
    if not isinstance(meta, dict) or meta.get("type") != SESSION_TYPE:
        raise StoreError("snapshot does not hold a MultiEM session")
    table = codecs.item_table_from_state(
        meta["table"], codecs.unpack(snapshot, "table/", meta["table"])
    )
    store = codecs.embedding_store_from_state(
        meta["store"], codecs.unpack(snapshot, "store/", meta["store"])
    )
    if verify:
        recorded = meta["digests"]
        derived = {
            "item_table": codecs.item_table_digest(table),
            "embedding_store": codecs.embedding_store_digest(store),
        }
        if "payload" in recorded:
            derived["payload"] = snapshot.payload_digest()
        if derived != recorded:
            raise StoreError(
                f"snapshot digests do not match its contents: recorded {recorded}, "
                f"derived {derived} (corrupted or truncated file)"
            )
    encoder = codecs.encoder_from_state(
        meta["encoder"], codecs.unpack(snapshot, "encoder/", meta["encoder"])
    )
    cache = None
    if meta.get("cache") is not None:
        cache = codecs.index_cache_from_state(
            meta["cache"], codecs.unpack(snapshot, "cache/", meta["cache"])
        )
    return IncrementalMultiEM.from_snapshot_state(
        config=codecs.config_from_meta(meta["config"]),
        encoder=encoder,
        attributes=tuple(meta["attributes"]),
        schema=tuple(meta["schema"]),
        table=table,
        store=store,
        known_sources=meta["known_sources"],
        index_cache=cache,
    )


def load_matcher(path, *, mmap: bool = True, verify: bool = True) -> IncrementalMultiEM:
    """Restore a fitted :class:`IncrementalMultiEM` from a session snapshot.

    With ``mmap=True`` the matcher's arrays stay backed by the mapped file
    (zero copies, read-only); the mapping lives as long as the arrays do.
    ``verify=True`` re-derives and checks the recorded content digests.
    """
    snapshot = Snapshot.open(path, mmap=mmap)
    try:
        return _restore(snapshot, verify=verify)
    finally:
        if not mmap:
            snapshot.close()


class MatchSession:
    """A restored pipeline serving match and nearest-tuple queries.

    Wraps the rehydrated :class:`IncrementalMultiEM` with the two serving
    calls a snapshot exists for; the underlying matcher stays available as
    :attr:`matcher` for anything else (evaluation, further snapshots).
    """

    def __init__(self, matcher: IncrementalMultiEM, digests: dict | None = None) -> None:
        self.matcher = matcher
        self.digests = dict(digests or {})

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot, *, verify: bool = True) -> "MatchSession":
        """Build a session over an already-open :class:`Snapshot`.

        Lets a caller that needs the raw manifest (array names, payload
        size) open the file once and reuse the same mapping for the restore
        instead of parsing it twice.
        """
        matcher = _restore(snapshot, verify=verify)
        meta = snapshot.meta
        return cls(matcher, meta.get("digests") if isinstance(meta, dict) else None)

    @classmethod
    def load(cls, path, *, mmap: bool = True, verify: bool = True) -> "MatchSession":
        """Open a session snapshot (see :func:`load_matcher` for the knobs)."""
        snapshot = Snapshot.open(path, mmap=mmap)
        try:
            return cls.from_snapshot(snapshot, verify=verify)
        finally:
            if not mmap:
                snapshot.close()

    # ------------------------------------------------------------- serving
    def match_new_table(self, table: Table):
        """Fold one new source table into the restored state (no refit).

        Exactly :meth:`IncrementalMultiEM.add_table` — one two-table merge
        against the integrated table plus a pruning pass — and byte-for-byte
        the result the never-snapshotted matcher would return.
        """
        return self.matcher.add_table(table)

    def query(self, texts, k: int = 1, max_distance: float | None = None):
        """Nearest integrated tuples for raw serialized texts.

        Encodes ``texts`` with the restored encoder and searches the
        integrated table with the configured ANN backend (through the
        restored index cache, so repeated queries — and a cache warmed by a
        previous ``add_table`` — never rebuild the index). Returns one list
        per text of ``(members, distance)`` pairs, nearest first; pairs
        beyond ``max_distance`` (default: the merging threshold ``m``) are
        dropped.
        """
        matcher = self.matcher
        table = matcher.integrated_table
        if len(table) == 0:
            return [[] for _ in texts]
        representer = matcher._representer
        assert representer is not None
        vectors = representer.encode_texts(list(texts))
        merging = matcher.config.merging
        if max_distance is None:
            max_distance = merging.m
        from ..ann.mutual import create_index, resolve_backend

        index_kwargs = {
            "hnsw_max_degree": merging.hnsw_max_degree,
            "hnsw_ef_construction": merging.hnsw_ef_construction,
            "hnsw_ef_search": merging.hnsw_ef_search,
            "lsh_num_tables": merging.lsh_num_tables,
            "lsh_num_bits": merging.lsh_num_bits,
            "lsh_probe_neighbors": merging.lsh_probe_neighbors,
            "seed": merging.seed,
        }

        def build():
            return create_index(
                merging.index,
                merging.metric,
                size_hint=table.vectors.shape[0],
                brute_force_limit=merging.brute_force_limit,
                **index_kwargs,
            ).build(table.vectors)

        cache = matcher._index_cache
        if cache is not None:
            # Same params key the merge stage uses, so a query content-hits
            # the index a previous merge (or query) already built.
            resolved = resolve_backend(
                merging.index, table.vectors.shape[0], merging.brute_force_limit
            )
            params_key = (resolved, merging.metric, tuple(sorted(index_kwargs.items())))
            index = cache.get_or_build(table.vectors, build, params_key=params_key)
        else:
            index = build()
        indices, distances = index.query(vectors, k)
        from ..data.entity import EntityRef

        def members_of(item: int) -> tuple:
            start, stop = int(table.member_offsets[item]), int(table.member_offsets[item + 1])
            return tuple(
                EntityRef(table.sources[int(sid)], int(idx))
                for sid, idx in zip(
                    table.member_sources[start:stop], table.member_indices[start:stop]
                )
            )

        results = []
        for row in range(indices.shape[0]):
            hits = []
            for slot in range(indices.shape[1]):
                item = int(indices[row, slot])
                dist = float(distances[row, slot])
                if item < 0 or not np.isfinite(dist) or dist > max_distance:
                    continue
                hits.append((members_of(item), dist))
            results.append(hits)
        return results

    # ------------------------------------------------------------ plumbing
    @property
    def known_sources(self) -> tuple[str, ...]:
        return self.matcher.known_sources

    def close(self) -> None:
        """Release the matcher's worker pools (the mapping follows its arrays)."""
        self.matcher.close()

    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
