"""Writer lock for snapshot store directories (pid + timestamp, stale takeover).

Every mutating store operation — ``save``, ``append`` (delta save),
``compact``, ``gc``, ``fsck --repair`` — serializes on one ``.lock`` file in
the store directory. Two concurrent writers on the same directory would
interleave temp files and chain links (the second ``append`` diffing against
a parent the first is about to supersede), so the second caller **fails
fast** with :class:`~repro.exceptions.StoreLockedError` instead.

The lock file is created with ``O_CREAT | O_EXCL`` (atomic on every
filesystem the store targets) and records ``{"pid", "time", "host"}``.
Takeover is allowed when the recorded holder is provably gone: its pid is
dead on this host, or the lock is older than ``stale_after`` seconds (a
live-but-wedged writer; writers finish in seconds, so the default of 30
minutes is generous). A crashed writer therefore blocks nobody.

Within one process the lock is **reentrant** (per directory, counted):
``compact_session`` holds the lock while delegating to ``save_session``,
which re-enters it. The reentrancy is process-wide, not per-thread — two
threads of one process saving into one directory are not mutually excluded
(the pipeline never does this; cross-*process* exclusion is what the lock
exists for).

Acquiring the lock also sweeps stale partial files
(:func:`repro.store.fsck.sweep_partials`): while the lock is held no other
writer can be mid-write, so every ``*.tmp.<pid>`` in the directory is a
crashed writer's leftover and is safe to remove.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

from ..exceptions import StoreLockedError

#: Lock-file name inside a store directory.
LOCK_NAME = ".lock"

#: Age beyond which a lock from a live-but-silent pid may be taken over.
DEFAULT_STALE_SECONDS = 1800.0

#: Reentrancy ledger: abspath(directory) -> acquisition count (this process).
_HELD: dict[str, int] = {}
_HELD_GUARD = threading.Lock()


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:
        return False
    return True


class StoreLock:
    """Context-managed writer lock over one store directory."""

    def __init__(self, directory, *, stale_after: float = DEFAULT_STALE_SECONDS) -> None:
        self.directory = os.path.abspath(os.fspath(directory) or ".")
        self.path = os.path.join(self.directory, LOCK_NAME)
        self.stale_after = float(stale_after)
        self._owned = False

    # ------------------------------------------------------------- internals
    def _holder(self) -> dict:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                return {}
            return payload
        except (OSError, ValueError):
            # Unreadable or torn lock payload: treat as anonymous. It still
            # blocks until it goes stale by age.
            return {}

    def _is_stale(self, holder: dict) -> bool:
        pid = holder.get("pid")
        host = holder.get("host")
        same_host = host in (None, socket.gethostname())
        if same_host and isinstance(pid, int) and not pid_alive(pid):
            return True
        stamp = holder.get("time")
        if isinstance(stamp, (int, float)):
            return (time.time() - stamp) > self.stale_after
        # No readable timestamp: fall back to the file's mtime.
        try:
            return (time.time() - os.path.getmtime(self.path)) > self.stale_after
        except OSError:
            return True  # vanished between exists-check and stat: retry

    # ------------------------------------------------------------- lifecycle
    def acquire(self) -> "StoreLock":
        with _HELD_GUARD:
            count = _HELD.get(self.directory, 0)
            if count:
                _HELD[self.directory] = count + 1
                return self
        os.makedirs(self.directory, exist_ok=True)
        for attempt in (0, 1):
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)  # atomic-write-exempt: O_EXCL create IS the lock primitive; a torn payload only delays stale takeover
            except FileExistsError:
                holder = self._holder()
                if attempt == 0 and self._is_stale(holder):
                    # Takeover: remove the dead holder's file and race for a
                    # fresh O_EXCL create; losing the race reports the winner.
                    try:
                        os.unlink(self.path)
                    except FileNotFoundError:
                        pass
                    continue
                raise StoreLockedError(
                    f"store directory {self.directory!r} is locked by "
                    f"pid {holder.get('pid', '?')} on {holder.get('host', '?')} "
                    f"since {holder.get('time', '?')} ({self.path}); concurrent "
                    "save/append/compact would interleave — retry once it finishes, "
                    "or remove the lock if the holder is known dead"
                )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"pid": os.getpid(), "time": time.time(), "host": socket.gethostname()},
                    handle,
                )
            self._owned = True
            with _HELD_GUARD:
                _HELD[self.directory] = 1
            # With the lock held, no writer can be mid-write: every partial
            # left in the directory is a crashed writer's leftover.
            from .fsck import sweep_partials

            sweep_partials(self.directory, all_pids=True)
            return self
        raise StoreLockedError(f"could not acquire {self.path!r}")  # pragma: no cover

    def release(self) -> None:
        with _HELD_GUARD:
            count = _HELD.get(self.directory, 0)
            if count > 1:
                _HELD[self.directory] = count - 1
                return
            _HELD.pop(self.directory, None)
        if self._owned:
            self._owned = False
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
