"""Shared-memory task planes for the process-pool backends.

The pickle-based process dispatch serializes every :class:`ItemTable` (and
every pruning member matrix) into the pool's pipe and back — at large table
sizes that serialization dominates the fan-out. This module replaces the
array traffic with POSIX shared memory carrying :mod:`repro.store.format`
snapshots:

* the **parent** packs all of one ``map`` call's task arrays into a single
  :class:`TaskPlane` segment (one aligned snapshot buffer, written in place —
  no intermediate bytes) and sends workers only ``(plane_name, task_index)``
  descriptors plus small picklable scalars;
* **workers** attach the segment once per plane (:func:`worker_plane`) and
  reconstruct their inputs as zero-copy, read-only views over the mapped
  buffer;
* task **results** travel back the same way when they are array-heavy:
  :func:`export_response` writes a response snapshot into a fresh segment
  and returns its name; the parent copies the arrays out and unlinks it
  (:func:`read_response`).

Because the bytes workers see are exactly the bytes the parent holds, the
shared-memory dispatch is bit-identical to the pickle dispatch by
construction — pinned by ``tests/core/test_shared_memory_pool.py``.

Lifecycle: the parent owns every segment. Request planes are unlinked by the
parent right after the ``map`` barrier; response segments are unlinked as
soon as the parent has copied them out. Each segment is registered with the
(fork-shared) ``resource_tracker`` exactly once by its creator and
unregistered exactly once by the parent's ``unlink`` — attaches are
deliberately untracked (see :func:`_attach`) — so a segment leaked by a
crash is still reclaimed when the tracker shuts down, with no double-unlink
noise in normal operation. Workers close retired attachments when the next
plane arrives; an attachment whose views are still referenced (e.g. vectors
captured by a worker's persistent :class:`~repro.ann.cache.IndexCache`)
refuses to close with ``BufferError`` and is retried on later planes, so
nothing is ever unmapped under live arrays.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from ..exceptions import StoreError
from .format import Snapshot, SnapshotWriter

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def available() -> bool:
    """Whether this platform offers ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


#: Serializes the register-suppressing monkeypatch in :func:`_attach`: two
#: concurrent attaches in one process could otherwise capture each other's
#: patched function as "original" and leave the no-op installed for good.
_ATTACH_LOCK = threading.Lock()


def _attach(name: str):
    """Attach an existing segment without re-registering it with the tracker.

    CPython ≤ 3.12 registers POSIX shared memory on *attach* as well as on
    create (gh-82300). With the fork-shared tracker that duplicate register
    races the owner's ``unlink``: landing after it, the name is resurrected
    in the tracker's set and reported as leaked at shutdown. Suppressing
    ``register`` for the duration of the attach (under a lock, so the real
    function is always what gets restored) keeps the intended protocol —
    each segment is registered exactly once (by its creator) and
    unregistered exactly once (by the parent's ``unlink``).
    """
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class TaskPlane:
    """Parent-side request segment holding every task's arrays for one ``map``.

    ``tasks`` is one ``{name: array}`` dict per task; task ``i``'s arrays are
    stored under the ``t{i}/`` prefix. ``metas`` (optional, JSON-able) ride
    in the snapshot meta under ``"tasks"``.
    """

    def __init__(self, tasks: "Sequence[dict[str, np.ndarray]]", metas: list | None = None) -> None:
        if _shared_memory is None:
            raise StoreError("shared-memory planes are unavailable on this platform")
        writer = SnapshotWriter()
        for i, arrays in enumerate(tasks):
            for name, array in arrays.items():
                writer.add_array(f"t{i}/{name}", array)
        writer.set_meta({"tasks": metas if metas is not None else [{}] * len(tasks)})
        self._shm = _shared_memory.SharedMemory(create=True, size=max(writer.required_size(), 1))
        try:
            writer.write_into(self._shm.buf)
        except BaseException:
            self.close()
            raise
        self.name = self._shm.name

    def close(self) -> None:
        """Unlink and release the segment (idempotent).

        Call only after the dispatching ``map`` returned — workers attach
        lazily, and an unlinked name cannot be attached anymore (already
        attached workers keep their mapping until they retire it).
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # pragma: no cover - parent drops views before close
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "TaskPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------- worker side
#: name -> (SharedMemory, Snapshot) of the plane this worker currently serves.
_ATTACHED: dict = {}
#: retired attachments whose close raised BufferError (views still alive).
_PENDING_CLOSE: list = []


def _retire(shm, reader) -> bool:
    """Close one attachment; False when live views still pin the mapping."""
    if reader is not None:
        reader.close()
    try:
        shm.close()
        return True
    except BufferError:
        return False


def retire_worker_attachments(keep: str | None = None) -> None:
    """Close every cached plane attachment (except ``keep``) in this process.

    Attachments whose zero-copy views are still referenced — e.g. vectors a
    worker's persistent :class:`~repro.ann.cache.IndexCache` captured —
    refuse to close with ``BufferError`` and move to a pending list retried
    on every later call, so a mapping is never pulled out from under live
    arrays. Also the in-process cleanup hook for benchmarks/tests that play
    the worker role themselves.
    """
    for other in [key for key in _ATTACHED if key != keep]:
        shm, reader = _ATTACHED.pop(other)
        if not _retire(shm, reader):
            _PENDING_CLOSE.append(shm)
    _PENDING_CLOSE[:] = [shm for shm in _PENDING_CLOSE if not _retire(shm, None)]


def worker_plane(name: str) -> Snapshot:
    """Attach (or reuse) the request plane ``name`` inside a pool worker.

    A new plane name retires every previously attached plane: by the time the
    parent dispatches against a new plane, the ``map`` barrier guarantees all
    tasks of the old one have finished, so its views are garbage except for
    arrays captured by persistent worker state — those defer the unmap via
    the pending-close list (see :func:`retire_worker_attachments`).
    """
    entry = _ATTACHED.get(name)
    if entry is not None:
        return entry[1]
    retire_worker_attachments(keep=name)
    if _shared_memory is None:
        raise StoreError("shared-memory planes are unavailable on this platform")
    shm = _attach(name)
    reader = Snapshot.from_buffer(shm.buf, copy=False)
    _ATTACHED[name] = (shm, reader)
    return reader


def task_arrays(plane: Snapshot, index: int, names: "Sequence[str]") -> "dict[str, np.ndarray]":
    """Task ``index``'s named arrays as zero-copy views."""
    return {name: plane.array(f"t{index}/{name}") for name in names}


# ------------------------------------------------------------------ responses
def response_names(token: str, count: int) -> list[str]:
    """Deterministic response-segment names for one dispatch round.

    The parent generates a unique ``token`` per round and hands each task
    its pre-assigned name: because the parent knows every name *before* the
    round runs, it can reclaim the segments of already-completed tasks even
    when the dispatching ``map`` itself raises (a crashed worker must not
    strand finished siblings' output in ``/dev/shm``).
    """
    return [f"repro_{token}_{i}" for i in range(count)]


def export_response(arrays: "dict[str, np.ndarray]", meta, *, segment_name: str | None = None) -> tuple:
    """Write a response snapshot into a fresh segment (worker side).

    Returns the ``("shm", name)`` descriptor the parent hands to
    :func:`read_response`. Ownership transfers to the parent: the worker
    closes its mapping immediately (the name stays valid — and registered
    with the shared resource tracker — until the parent unlinks it).
    ``segment_name`` (from :func:`response_names`) makes the segment
    reclaimable by the parent even if this descriptor never arrives.
    """
    if _shared_memory is None:
        raise StoreError("shared-memory planes are unavailable on this platform")
    writer = SnapshotWriter()
    for name, array in arrays.items():
        writer.add_array(name, array)
    writer.set_meta(meta)
    size = max(writer.required_size(), 1)
    try:
        shm = _shared_memory.SharedMemory(name=segment_name, create=True, size=size)
    except FileExistsError:
        # A previous attempt at this task (worker killed or timed out
        # mid-export, task re-dispatched by the self-healing executor) left a
        # partially written segment under the same deterministic name.
        # Nobody reads a segment before its descriptor is returned, so the
        # leftover is dead weight: reclaim the name and start clean.
        stale = _shared_memory.SharedMemory(name=segment_name)
        stale.close()
        stale.unlink()
        shm = _shared_memory.SharedMemory(name=segment_name, create=True, size=size)
    try:
        writer.write_into(shm.buf)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    name = shm.name
    shm.close()
    return ("shm", name)


def read_response(descriptor: tuple) -> Snapshot:
    """Materialize a worker response (parent side) and unlink its segment.

    The returned :class:`Snapshot` is in copy mode — its arrays are
    independent parent-memory copies, so the segment is gone by the time this
    returns.
    """
    kind, name = descriptor
    if kind != "shm":  # pragma: no cover - descriptor contract violation
        raise StoreError(f"unknown response descriptor kind {kind!r}")
    if _shared_memory is None:
        raise StoreError("shared-memory planes are unavailable on this platform")
    shm = _attach(name)
    try:
        return Snapshot.from_buffer(shm.buf, copy=True)
    finally:
        shm.close()
        shm.unlink()


def discard_response(descriptor_or_name) -> None:
    """Unlink a response segment without reading it (error-path cleanup).

    Accepts a ``("shm", name)`` descriptor or a bare segment name (from
    :func:`response_names`); a segment that was never created, or is already
    gone, is silently skipped.
    """
    if _shared_memory is None:
        return
    if isinstance(descriptor_or_name, tuple):
        if not descriptor_or_name or descriptor_or_name[0] != "shm":
            return
        name = descriptor_or_name[1]
    else:
        name = descriptor_or_name
    try:
        shm = _attach(name)
    except (OSError, ValueError):
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
