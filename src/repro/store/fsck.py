"""Integrity checking, repair, rollback, and chain GC for snapshot stores.

A snapshot store directory holds base snapshots, append-only chain deltas,
retirement markers left by compaction, the writer ``.lock``, and — after a
crash — partial ``*.tmp.<pid>`` files. This module is the offline half of
the durability story (:mod:`repro.store.format` is the online half):

* :func:`fsck_store` scans one directory, verifies every snapshot file
  (header, manifest, per-segment digests, whole-payload digest, chain links
  and depths), classifies the damage, sweeps stale partials, and — in
  repair mode — quarantines files whose state can never be reconstructed
  (damaged files and every descendant whose ancestry runs through one).
  fsck **repairs** what is mechanically recoverable (stale partials, stale
  locks via the lock's own takeover, markers whose GC half-finished) and
  **quarantines** what is not (bit rot inside a segment, broken chain
  links): quarantined files move to ``quarantine/`` untouched, never
  deleted, so a better replica can still be salvaged by hand.
* :func:`deepest_intact` walks a chain from its tip and returns the deepest
  member whose *entire* ancestry verifies — the opt-in ``--allow-rollback``
  load target after tip damage.
* :func:`gc_store` deletes chain files superseded by a compaction. GC is
  strictly **marker-driven**: ``compact_session(..., retire=True)`` records
  which files the compacted base replaces; GC honours a marker only after
  re-verifying the compacted file's payload digest, and never deletes a
  file reachable from any surviving chain tip (a sibling chain sharing the
  superseded base keeps the base alive). A crash anywhere in
  compact → mark → gc leaves either the old chain, the marker, or both —
  every one of which the next gc run resolves.
* :func:`sweep_partials` removes crashed writers' temp files — all of them
  when the caller holds the writer lock (no writer can be mid-write), else
  only those whose embedded pid is dead.
"""

from __future__ import annotations

import json
import os
import re
import struct
from dataclasses import dataclass, field

from ..exceptions import StoreError
from .format import MAGIC, Snapshot, SnapshotChain, atomic_output
from .lock import LOCK_NAME, StoreLock, pid_alive

#: Partial files left by :func:`repro.store.format.atomic_output`.
_TMP_RE = re.compile(r"\.tmp\.(\d+)$")

#: Sidecar written by ``compact_session(retire=True)`` next to the compacted
#: base, naming the chain files it supersedes (GC input).
RETIRE_SUFFIX = ".retired.json"

#: Subdirectory damaged files are moved (never deleted) into by ``--repair``.
QUARANTINE_DIR = "quarantine"


# ---------------------------------------------------------------- primitives
def sweep_partials(directory, *, all_pids: bool = False) -> "list[str]":
    """Remove stale ``*.tmp.<pid>`` partial files; returns what was removed.

    ``all_pids=True`` is only safe under the writer lock (no writer can be
    mid-write); otherwise only partials whose recorded pid is dead on this
    host are swept — a live writer's in-flight temp is never touched.
    """
    directory = os.fspath(directory) or "."
    removed: list[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        match = _TMP_RE.search(name)
        if match is None:
            continue
        if not all_pids and pid_alive(int(match.group(1))):
            continue
        path = os.path.join(directory, name)
        try:
            os.unlink(path)
        except OSError:
            continue
        removed.append(path)
    return removed


def is_snapshot_file(path) -> bool:
    """Whether ``path`` starts with the snapshot magic (cheap, header-only)."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


@dataclass
class FileStatus:
    """One file's verdict in an fsck report."""

    name: str
    kind: str  # "base" | "delta" | "partial" | "marker" | "lock" | "other"
    status: str  # "ok" | "damaged" | "orphaned" | "swept" | "quarantined"
    detail: str = ""
    #: Derived payload digest (ok snapshot files only; feeds link checks).
    payload: str | None = None
    #: Parent basename recorded in the manifest (delta files only).
    parent: str | None = None
    depth: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "swept", "quarantined")


@dataclass
class FsckReport:
    directory: str
    files: "list[FileStatus]" = field(default_factory=list)
    swept: "list[str]" = field(default_factory=list)
    quarantined: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No unresolved damage (quarantined/swept files count as handled)."""
        return all(status.ok for status in self.files)

    def status_of(self, name: str) -> "FileStatus | None":
        for status in self.files:
            if status.name == name:
                return status
        return None

    def format_table(self) -> str:
        """Human-readable per-file status table (the CLI's output)."""
        width = max([len(s.name) for s in self.files] + [4])
        lines = [f"{'file':<{width}}  {'kind':<7}  {'status':<11}  detail"]
        for status in self.files:
            lines.append(
                f"{status.name:<{width}}  {status.kind:<7}  {status.status:<11}  {status.detail}"
            )
        return "\n".join(lines)


def check_snapshot_file(path) -> FileStatus:
    """Verify one snapshot file in isolation (no chain resolution).

    Checks, in order: header + manifest parse, every segment's bounds and
    recorded per-segment digest, and — for session snapshots that record one
    — the whole-payload digest. Each failure mode carries its own message so
    a flipped bit in ``table/…`` reads differently from a truncated manifest.
    """
    name = os.path.basename(os.fspath(path))
    try:
        snapshot = Snapshot.open(path, mmap=True)
    except (StoreError, OSError, ValueError, struct.error) as exc:
        return FileStatus(name, "unknown", "damaged", f"unreadable: {exc}")
    with snapshot:
        kind = "delta" if snapshot.chain is not None else "base"
        parent = snapshot.chain.get("parent") if snapshot.chain else None
        depth = int(snapshot.chain["depth"]) if snapshot.chain else 0
        failures = [
            f"{segment}: {detail}"
            for segment, passed, detail in snapshot.verify_segments()
            if not passed
        ]
        if failures:
            return FileStatus(
                name, kind, "damaged", "; ".join(failures), parent=parent, depth=depth
            )
        try:
            payload = snapshot.payload_digest()
        except StoreError as exc:
            return FileStatus(name, kind, "damaged", str(exc), parent=parent, depth=depth)
        meta = snapshot.meta
        recorded = (meta.get("digests") or {}).get("payload") if isinstance(meta, dict) else None
        if recorded is not None and recorded != payload:
            return FileStatus(
                name,
                kind,
                "damaged",
                f"payload digest mismatch (recorded {recorded}, derived {payload})",
                parent=parent,
                depth=depth,
            )
        if snapshot.chain is not None and snapshot.delta is None:
            return FileStatus(
                name, kind, "damaged", "chain link without a delta spec",
                parent=parent, depth=depth,
            )
        return FileStatus(
            name, kind, "ok", "verified", payload=payload, parent=parent, depth=depth
        )


# -------------------------------------------------------------------- fsck
def fsck_store(directory, *, repair: bool = False) -> FsckReport:
    """Verify every snapshot file in ``directory``; optionally quarantine.

    Takes the writer lock (a concurrent writer would make every verdict
    stale), sweeps all partial files, verifies each snapshot file and every
    chain link between them, and marks files whose ancestry runs through
    damage as ``orphaned``. With ``repair=True``, damaged and orphaned
    files are moved into ``quarantine/`` — never deleted — so the remaining
    directory holds only loadable state.
    """
    directory = os.fspath(directory) or "."
    report = FsckReport(directory=os.path.abspath(directory))
    try:
        partials_before = [n for n in os.listdir(directory) if _TMP_RE.search(n)]
    except OSError:
        partials_before = []
    with StoreLock(directory):
        # Lock acquisition swept every partial (lock held => no live writer).
        report.swept = [
            os.path.join(directory, name)
            for name in partials_before
            if not os.path.exists(os.path.join(directory, name))
        ]
        for name in partials_before:
            report.files.append(
                FileStatus(name, "partial", "swept", "stale partial from a crashed writer")
            )
        statuses: dict[str, FileStatus] = {}
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if name == LOCK_NAME:
                continue  # that's us
            if _TMP_RE.search(name):
                report.files.append(FileStatus(name, "partial", "swept", "stale partial"))
                continue
            if name.endswith(RETIRE_SUFFIX):
                report.files.append(
                    FileStatus(name, "marker", "ok", "compaction retirement marker")
                )
                continue
            if not is_snapshot_file(path):
                continue
            statuses[name] = check_snapshot_file(path)

        # Chain-link verification between individually-intact files.
        for name, status in statuses.items():
            if status.status != "ok" or status.parent is None:
                continue
            parent = statuses.get(status.parent)
            if parent is None:
                status.status = "orphaned"
                status.detail = f"parent {status.parent!r} is missing from the directory"
            elif parent.status != "ok":
                pass  # propagated below once the parent's verdict is final
            elif status.depth != parent.depth + 1:
                status.status = "damaged"
                status.detail = (
                    f"chain depth {status.depth} does not follow parent depth {parent.depth}"
                )
            else:
                recorded = None
                with Snapshot.open(os.path.join(directory, name)) as snapshot:
                    recorded = snapshot.chain.get("parent_payload")
                if recorded != parent.payload:
                    status.status = "damaged"
                    status.detail = (
                        f"chain link broken: appended onto parent payload {recorded}, "
                        f"but {status.parent!r} now derives {parent.payload} "
                        "(parent modified or replaced)"
                    )

        # Orphan propagation: a descendant of damage can never reconstruct.
        changed = True
        while changed:
            changed = False
            for status in statuses.values():
                if status.status != "ok" or status.parent is None:
                    continue
                parent = statuses.get(status.parent)
                if parent is not None and not parent.status == "ok":
                    status.status = "orphaned"
                    status.detail = f"ancestry runs through {status.parent!r} ({parent.status})"
                    changed = True

        if repair:
            quarantine = os.path.join(directory, QUARANTINE_DIR)
            for name, status in statuses.items():
                if status.status not in ("damaged", "orphaned"):
                    continue
                os.makedirs(quarantine, exist_ok=True)
                target = os.path.join(quarantine, name)
                suffix = 0
                while os.path.exists(target):
                    suffix += 1
                    target = os.path.join(quarantine, f"{name}.{suffix}")
                os.replace(os.path.join(directory, name), target)
                status.detail = f"[{status.status}] {status.detail} -> quarantined to {target}"
                status.status = "quarantined"
                report.quarantined.append(target)
        report.files.extend(statuses.values())
    return report


def deepest_intact(tip_path) -> "str | None":
    """Deepest chain member (from ``tip_path``) whose whole ancestry verifies.

    Walks the recorded parent links tip → base as far as manifests remain
    parseable, then returns the first (deepest) member that opens, link-
    verifies, and passes every per-file digest check — the state an
    ``--allow-rollback`` load falls back to. ``None`` when not even the
    base survives.
    """
    tip_path = os.fspath(tip_path)
    directory = os.path.dirname(tip_path) or "."
    ancestry: list[str] = []
    current = tip_path
    while True:
        ancestry.append(current)
        try:
            with Snapshot.open(current) as snapshot:
                chain = snapshot.chain
        except (StoreError, OSError, ValueError, struct.error):
            break  # unreadable manifest: deeper ancestors are unreachable
        if chain is None:
            break
        parent = os.path.join(directory, chain["parent"])
        if not os.path.exists(parent):
            break
        current = parent
    for candidate in ancestry:
        if check_snapshot_file(candidate).status != "ok":
            continue
        try:
            with SnapshotChain.open(candidate) as chain:
                chain.verify_links()
                if all(
                    check_snapshot_file(path).status == "ok" for path in chain.paths[:-1]
                ):
                    return candidate
        except (StoreError, OSError, ValueError, struct.error):
            continue
    return None


# ---------------------------------------------------------------------- GC
def retirement_marker_path(compacted_path) -> str:
    return os.fspath(compacted_path) + RETIRE_SUFFIX


def write_retirement_marker(compacted_path, compacted_payload: str, superseded: dict) -> str:
    """Record that ``compacted_path`` supersedes the ``superseded`` chain files.

    ``superseded`` maps basename → payload digest at retirement time. The
    marker is the *only* thing that authorizes GC to delete those files, and
    GC re-verifies the compacted payload digest before honouring it.
    """
    marker = retirement_marker_path(compacted_path)
    payload = {
        "compacted": os.path.basename(os.fspath(compacted_path)),
        "compacted_payload": compacted_payload,
        "superseded": dict(superseded),
    }
    with atomic_output(marker, "w") as handle:
        json.dump(payload, handle, indent=1)
    return marker


@dataclass
class GcReport:
    directory: str
    removed: "list[str]" = field(default_factory=list)
    kept: "list[tuple[str, str]]" = field(default_factory=list)  # (name, reason)
    markers_cleared: "list[str]" = field(default_factory=list)
    dry_run: bool = False

    def format_table(self) -> str:
        lines = [f"gc {self.directory} ({'dry run' if self.dry_run else 'applied'}):"]
        for name in self.removed:
            lines.append(f"  remove  {name}")
        for name, reason in self.kept:
            lines.append(f"  keep    {name}  ({reason})")
        for name in self.markers_cleared:
            lines.append(f"  cleared {name}")
        if not (self.removed or self.kept or self.markers_cleared):
            lines.append("  nothing to collect")
        return "\n".join(lines)


def _ancestry_closure(names: "set[str]", parents: "dict[str, str | None]") -> "set[str]":
    """All files reachable from ``names`` by following parent links."""
    live: set[str] = set()
    stack = list(names)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        parent = parents.get(name)
        if parent is not None:
            stack.append(parent)
    return live


def gc_store(directory, *, dry_run: bool = False) -> GcReport:
    """Delete chain files superseded by verified compactions.

    Safety invariants, in decreasing order of authority:

    1. Only files named in a retirement marker are ever candidates.
    2. A marker is honoured only when its compacted file exists and its
       payload digest re-derives to the recorded one (a crash between
       compact and marker write, or a corrupted compacted file, keeps the
       whole superseded chain).
    3. A candidate reachable from any *surviving* chain tip — a tip that is
       not itself superseded — is kept (sibling chains share bases).

    Idempotent and crash-resumable: a marker is cleared only once every
    file it names is gone; re-running gc finishes a half-done pass.
    """
    directory = os.fspath(directory) or "."
    report = GcReport(directory=os.path.abspath(directory), dry_run=dry_run)
    with StoreLock(directory):
        parents: dict[str, str | None] = {}
        markers: list[str] = []
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            if name.endswith(RETIRE_SUFFIX):
                markers.append(name)
                continue
            if not is_snapshot_file(path):
                continue
            try:
                with Snapshot.open(path) as snapshot:
                    parents[name] = snapshot.chain.get("parent") if snapshot.chain else None
            except (StoreError, OSError, ValueError, struct.error):
                parents[name] = None  # damaged: fsck's problem, never gc's

        referenced = {parent for parent in parents.values() if parent is not None}
        tips = {name for name in parents if name not in referenced}

        superseded_by_marker: dict[str, dict] = {}
        honoured: list[str] = []
        for marker_name in markers:
            marker_path = os.path.join(directory, marker_name)
            try:
                with open(marker_path, "r", encoding="utf-8") as handle:
                    marker = json.load(handle)
                compacted = marker["compacted"]
                superseded = dict(marker["superseded"])
                recorded_payload = marker["compacted_payload"]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                report.kept.append((marker_name, f"unreadable marker: {exc}"))
                continue
            compacted_path = os.path.join(directory, compacted)
            verdict = None
            if not os.path.exists(compacted_path):
                verdict = f"compacted file {compacted!r} is missing"
            else:
                try:
                    with Snapshot.open(compacted_path) as snapshot:
                        derived = snapshot.payload_digest()
                    if derived != recorded_payload:
                        verdict = (
                            f"compacted file {compacted!r} payload {derived} does not "
                            f"match the marker's {recorded_payload}"
                        )
                except (StoreError, OSError, ValueError, struct.error) as exc:
                    verdict = f"compacted file {compacted!r} is unreadable: {exc}"
            if verdict is not None:
                report.kept.append((marker_name, f"not honoured: {verdict}"))
                continue
            honoured.append(marker_name)
            superseded_by_marker[marker_name] = superseded

        all_superseded = {
            name for superseded in superseded_by_marker.values() for name in superseded
        }
        surviving_tips = {name for name in tips if name not in all_superseded}
        live = _ancestry_closure(surviving_tips, parents)
        for marker_name in honoured:
            live.add(json.load(open(os.path.join(directory, marker_name), encoding="utf-8"))["compacted"])

        for marker_name in honoured:
            remaining = 0
            for name in sorted(superseded_by_marker[marker_name]):
                path = os.path.join(directory, name)
                if not os.path.exists(path):
                    continue  # a previous (crashed) gc pass got it
                if name in live:
                    report.kept.append(
                        (name, "reachable from a surviving chain tip; kept")
                    )
                    remaining += 1
                    continue
                report.removed.append(name)
                if not dry_run:
                    os.unlink(path)
                else:
                    remaining += 1
            if remaining == 0 and not dry_run:
                os.unlink(os.path.join(directory, marker_name))
                report.markers_cleared.append(marker_name)
    return report
