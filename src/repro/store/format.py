"""Versioned, memory-mappable snapshot container (header + aligned segments + JSON manifest).

One snapshot is a single buffer (a file on disk or a shared-memory segment)
laid out arrow-style::

    offset 0   magic  b"REPROSNP"
    offset 8   uint64 format version (little-endian)
    offset 16  uint64 manifest offset
    offset 24  uint64 manifest length
    offset 64  raw array segments, each aligned to a 64-byte boundary
    ...
    manifest   UTF-8 JSON: {"arrays": {name: {dtype, shape, offset, nbytes}},
                            "meta": <caller-supplied JSON tree>,
                            "chain": <optional parent link, delta files only>,
                            "delta": <optional delta spec, delta files only>}

Arrays are stored as raw C-contiguous bytes, so a reader can hand back numpy
views *directly over the mapped buffer* — ``Snapshot.open(path, mmap=True)``
and ``Snapshot.from_buffer(buf)`` perform zero copies; the returned arrays
are marked read-only because they alias storage another process (or a later
writer) may own. ``mmap=False`` / ``copy=True`` materialize independent
writable arrays instead.

Delta chains
------------

A snapshot may be the **base** of an append-only chain: a
:class:`DeltaWriter` produces a sibling file whose manifest carries a
``chain`` link — ``{"parent": <basename>, "parent_payload": <digest>,
"depth": k}`` — plus a ``delta`` spec describing how each logical array of
the new state derives from the parent's (``ref`` / ``alias`` / row-``patch``
/ ``full``; see :mod:`repro.store.delta`). Parents are resolved by basename
next to the child, so a chain directory can be relocated as a unit.
:meth:`SnapshotChain.open` walks the links tip → base (each file written
atomically, per-segment aligned exactly like a base snapshot), and
:meth:`SnapshotChain.verify_links` proves every parent's payload is bit for
bit the one its child was diffed against. Folding a chain back into one
logical state — and compacting it into a fresh aliased base — lives in
:mod:`repro.store.delta` and :mod:`repro.store.session`.

Format version policy
---------------------

The header carries a single integer **format version** (currently
``FORMAT_VERSION = 2``). Readers accept only the versions they understand
(``SUPPORTED_VERSIONS``) — raw buffer layouts cannot be sniffed safely.
Additive changes (new manifest meta keys, new array names) do **not** bump
the version; any change to the header, alignment, segment encoding, or the
meaning of existing manifest fields must. Version history:

* **1** — header + aligned segments + ``{"arrays", "meta"}`` manifest.
* **2** — manifest may carry ``chain`` / ``delta`` trees: a file can be an
  append-only delta over a parent snapshot instead of a self-contained
  state. Version-1 files remain readable (they are exactly the chain-free
  subset); version-1 readers must not see chain files, hence the bump.
"""

from __future__ import annotations

import contextlib
import json
import mmap as mmap_module
import os
import struct
from typing import Any, Iterable, Mapping

import numpy as np

from .. import faults as _faults
from ..exceptions import StoreError


@contextlib.contextmanager
def atomic_output(path: str | os.PathLike, mode: str = "wb", *, fsync: bool = True):
    """Open a sibling temp file; publish it over ``path`` only on success.

    The commit protocol shared by snapshot saves, retirement markers and the
    benchmark JSON trail: write ``<path>.tmp.<pid>``, fsync it, publish with
    one atomic ``os.replace``, then fsync the directory so the rename itself
    is durable. An interrupted writer can never leave a truncated file
    behind — the previous contents survive untouched and the temp file is
    removed on ordinary failure. A *crash* (a killed process — simulated by
    :class:`repro.faults.InjectedCrash`) leaves the partial temp file on
    disk exactly as a real crash would; stale partials are identified by
    their embedded pid and swept by :func:`repro.store.fsck.sweep_partials`
    (which every writer-lock acquisition and fsck run performs).

    Every durable file operation routes through :mod:`repro.faults`, so
    tests can tear the k-th write, drop the fsync, or fail the replace at
    will; with no fault plan active the hooks are plain passthroughs.
    """
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        handle = _faults.open_for_write(tmp_path, mode)
        try:
            yield handle
            if fsync:
                _faults.fsync_handle(handle)
        finally:
            handle.close()
        _faults.replace(tmp_path, path)
        if fsync:
            _faults.fsync_dir(os.path.dirname(path) or ".")
    except BaseException as exc:
        # A simulated crash means the machine died mid-write: leave the
        # partial exactly as a real crash would, for recovery to deal with.
        if not isinstance(exc, _faults.InjectedCrash):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise

MAGIC = b"REPROSNP"
FORMAT_VERSION = 2
#: Versions this reader understands (see the module docstring's history).
SUPPORTED_VERSIONS = (1, 2)
_ALIGNMENT = 64
_HEADER = struct.Struct("<8sQQQ")  # magic, version, manifest offset, manifest length


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class SnapshotWriter:
    """Collects named arrays plus a JSON meta tree, then writes one snapshot.

    Arrays are canonicalized to C-contiguous on :meth:`add_array` (a copy only
    when the input was non-contiguous); the writer holds references until the
    snapshot is written, so add-then-mutate is not supported. The same writer
    can target a file (:meth:`save`) or any writable buffer of
    :meth:`required_size` bytes (:meth:`write_into`) — the latter is how
    shared-memory planes are produced without an intermediate serialization.

    ``segment_digests=True`` records a per-segment content digest in every
    canonical manifest entry (an additive manifest key — no format-version
    bump), which is what lets :mod:`repro.store.fsck` pinpoint *which*
    segment a flipped bit landed in instead of reporting a whole-payload
    mismatch. Session saves enable it; transient shared-memory planes skip
    the extra hashing pass.
    """

    def __init__(self, *, segment_digests: bool = False) -> None:
        self._arrays: dict[str, np.ndarray] = {}
        self._aliases: dict[str, str] = {}  # name -> canonical name, same bytes
        self._by_buffer: dict[tuple, str] = {}
        self._meta: Any = {}
        self._chain: dict | None = None
        self._delta: dict | None = None
        self._segment_digests = segment_digests

    def add_array(self, name: str, array: np.ndarray) -> None:
        """Register one array under ``name`` (unique per snapshot).

        Arrays that share storage are written once: registering the same
        underlying buffer (same data pointer, dtype and shape) under a second
        name produces a manifest alias onto the first segment. The fitted
        pipeline aliases heavily — an index cache entry's key matrix *is* the
        index's vector matrix *is* the integrated table's vector plane — so
        this keeps snapshots at unique-data size instead of multiplying the
        dominant plane per referencing object.
        """
        if name in self._arrays or name in self._aliases:
            raise StoreError(f"duplicate array name {name!r} in snapshot")
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise StoreError(f"array {name!r} has object dtype; snapshots store raw buffers only")
        buffer_key = (
            array.__array_interface__["data"][0],
            array.dtype.str,
            array.shape,
        )
        canonical = self._by_buffer.get(buffer_key)
        if canonical is not None:
            self._aliases[name] = canonical
            return
        self._by_buffer[buffer_key] = name
        self._arrays[name] = array

    def add_strings(self, name: str, strings: Iterable[str]) -> None:
        """Register a list of strings as a UTF-8 bytes + offsets array pair."""
        for suffix, array in string_table_arrays(strings).items():
            self.add_array(name + suffix, array)

    def set_meta(self, meta: Any) -> None:
        """Attach the manifest's ``meta`` tree (must be JSON-serializable)."""
        self._meta = meta

    def set_chain(self, chain: "dict | None") -> None:
        """Attach the manifest's ``chain`` link (delta files; see module docs).

        Expected keys: ``parent`` (basename of the parent snapshot, resolved
        next to this file), ``parent_payload`` (the parent's
        :meth:`payload_digest`), and ``depth`` (1 for the first delta).
        """
        self._chain = None if chain is None else dict(chain)

    def set_delta(self, delta: "dict | None") -> None:
        """Attach the manifest's ``delta`` spec (see :mod:`repro.store.delta`)."""
        self._delta = None if delta is None else dict(delta)

    # ------------------------------------------------------------- layout
    def _layout(self) -> tuple[dict[str, dict], int, bytes]:
        """Segment offsets, manifest offset, and the manifest bytes."""
        entries: dict[str, dict] = {}
        offset = _aligned(_HEADER.size)
        for name, array in self._arrays.items():
            offset = _aligned(offset)
            entries[name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
            }
            if self._segment_digests:
                entries[name]["digest"] = segment_digest(
                    name, array.dtype.str, array.shape, array
                )
            offset += int(array.nbytes)
        for name, canonical in self._aliases.items():
            entries[name] = dict(entries[canonical])  # same segment, own entry
            entries[name]["alias_of"] = canonical
        tree: dict[str, Any] = {"arrays": entries, "meta": self._meta}
        if self._chain is not None:
            tree["chain"] = self._chain
        if self._delta is not None:
            tree["delta"] = self._delta
        manifest = json.dumps(tree, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
        return entries, offset, manifest

    def required_size(self) -> int:
        """Total snapshot size in bytes (header + segments + manifest)."""
        _, manifest_offset, manifest = self._layout()
        return manifest_offset + len(manifest)

    # -------------------------------------------------------------- write
    def write_into(self, buffer) -> int:
        """Write the snapshot into a writable buffer; returns bytes written.

        The buffer must hold at least :meth:`required_size` bytes (a
        shared-memory segment may be slightly larger — readers locate the
        manifest through the header, not the buffer end).
        """
        entries, manifest_offset, manifest = self._layout()
        view = memoryview(buffer)
        try:
            total = manifest_offset + len(manifest)
            if len(view) < total:
                raise StoreError(
                    f"snapshot needs {total} bytes but the buffer holds {len(view)}"
                )
            view[: _HEADER.size] = _HEADER.pack(
                MAGIC, FORMAT_VERSION, manifest_offset, len(manifest)
            )
            for name, array in self._arrays.items():
                entry = entries[name]
                start = entry["offset"]
                view[start : start + entry["nbytes"]] = array.reshape(-1).view(np.uint8).data
            view[manifest_offset : manifest_offset + len(manifest)] = manifest
            return total
        finally:
            view.release()

    def save(self, path: str | os.PathLike) -> int:
        """Write the snapshot to ``path`` atomically (temp file + rename)."""
        entries, manifest_offset, manifest = self._layout()
        with atomic_output(path) as handle:
            handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION, manifest_offset, len(manifest)))
            position = _HEADER.size
            for name, array in self._arrays.items():
                entry = entries[name]
                handle.write(b"\0" * (entry["offset"] - position))
                handle.write(array.reshape(-1).view(np.uint8).data)
                position = entry["offset"] + entry["nbytes"]
            handle.write(b"\0" * (manifest_offset - position))
            handle.write(manifest)
        return manifest_offset + len(manifest)

    def payload_digest(self) -> str:
        """BLAKE2b over every canonical segment (name + dtype + shape + bytes).

        Matches :meth:`Snapshot.payload_digest` of the written snapshot, so
        a reader can prove the whole payload survived storage bit for bit.
        Aliased names share their canonical segment and are hashed once,
        under the canonical (first-registered) name.
        """
        digest = _new_payload_digest()
        for name, array in self._arrays.items():
            _digest_segment(digest, name, array.dtype.str, array.shape, array)
        return digest.hexdigest()


class DeltaWriter(SnapshotWriter):
    """A :class:`SnapshotWriter` producing one append-only chain segment.

    Construction wires the ``chain`` link (parent basename + payload digest +
    depth); :meth:`SnapshotWriter.set_delta` attaches the array spec. The
    physical file is written exactly like a base snapshot — atomic
    temp-then-replace, 64-byte-aligned segments, one payload digest over its
    own segments — only the manifest distinguishes it.
    """

    def __init__(
        self,
        parent: str | os.PathLike,
        parent_payload: str,
        depth: int,
        *,
        segment_digests: bool = False,
    ) -> None:
        super().__init__(segment_digests=segment_digests)
        if depth < 1:
            raise StoreError("a delta's chain depth must be >= 1")
        self.set_chain(
            {
                "parent": os.path.basename(os.fspath(parent)),
                "parent_payload": parent_payload,
                "depth": int(depth),
            }
        )


class Snapshot:
    """Reader over one snapshot buffer, zero-copy by default.

    In mapped/buffer mode, :meth:`array` returns read-only views backed by
    the underlying storage (no bytes are copied); in copy mode every array is
    an independent writable copy and the source is released immediately.
    """

    def __init__(self, manifest: dict, buffer, *, copy: bool, closer=None) -> None:
        if not isinstance(manifest, dict) or "arrays" not in manifest:
            raise StoreError("snapshot manifest is malformed")
        self._entries: dict[str, dict] = manifest["arrays"]
        self.meta: Any = manifest.get("meta", {})
        #: Parent link for delta files (``None`` for base snapshots).
        self.chain: dict | None = manifest.get("chain")
        #: Delta array spec for delta files (``None`` for base snapshots).
        self.delta: dict | None = manifest.get("delta")
        #: Header format version of the source buffer.
        self.format_version: int = int(manifest.get("__format_version__", FORMAT_VERSION))
        #: Origin path when opened from a file (``None`` for raw buffers).
        self.path: str | None = None
        self._closer = closer
        self._materialized: dict[str, np.ndarray] | None = None
        if copy:
            self._materialized = {
                name: self._view(buffer, name).copy() for name in self._entries
            }
            self._buffer = None
            self.close()
        else:
            self._buffer = buffer

    # -------------------------------------------------------- constructors
    @classmethod
    def open(cls, path: str | os.PathLike, *, mmap: bool = True) -> "Snapshot":
        """Open one snapshot file; ``mmap=True`` maps it read-only, zero-copy.

        Opens exactly the named file — a delta file opens fine (its
        :attr:`chain` / :attr:`delta` manifests are exposed) but holds only
        its own segments; resolve a whole chain with
        :meth:`SnapshotChain.open`.
        """
        if _faults.reads_are_faulty():
            # Read-corruption faults need the bytes in hand; serve the
            # snapshot from the (possibly bit-flipped) buffer instead of a
            # pristine mapping.
            data = _faults.read_bytes(os.fspath(path))
            snapshot = cls(cls._parse(data), data, copy=not mmap)
            snapshot.path = os.fspath(path)
            return snapshot
        if mmap:
            with open(path, "rb") as handle:
                mapped = mmap_module.mmap(handle.fileno(), 0, access=mmap_module.ACCESS_READ)
            manifest = cls._parse(mapped)
            snapshot = cls(manifest, mapped, copy=False, closer=mapped.close)
        else:
            with open(path, "rb") as handle:
                data = handle.read()
            snapshot = cls(cls._parse(data), data, copy=True)
        snapshot.path = os.fspath(path)
        return snapshot

    @classmethod
    def from_buffer(cls, buffer, *, copy: bool = False) -> "Snapshot":
        """Read a snapshot out of any buffer (e.g. a shared-memory segment)."""
        return cls(cls._parse(buffer), buffer, copy=copy)

    @staticmethod
    def _parse(buffer) -> dict:
        view = memoryview(buffer)
        try:
            if len(view) < _HEADER.size:
                raise StoreError("buffer too small to be a snapshot")
            magic, version, manifest_offset, manifest_length = _HEADER.unpack(
                view[: _HEADER.size]
            )
            if magic != MAGIC:
                raise StoreError("not a repro snapshot (bad magic)")
            if version not in SUPPORTED_VERSIONS:
                raise StoreError(
                    f"snapshot format version {version} is not supported "
                    f"(this reader understands versions {SUPPORTED_VERSIONS})"
                )
            if manifest_offset + manifest_length > len(view):
                raise StoreError("snapshot manifest extends past the buffer end")
            manifest = bytes(view[manifest_offset : manifest_offset + manifest_length])
        finally:
            view.release()
        try:
            parsed = json.loads(manifest.decode("utf-8"))
        except ValueError as exc:
            raise StoreError(f"snapshot manifest is not valid JSON: {exc}") from exc
        if isinstance(parsed, dict):
            parsed["__format_version__"] = int(version)
        return parsed

    # -------------------------------------------------------------- access
    def _view(self, buffer, name: str) -> np.ndarray:
        entry = self._entries[name]
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(entry["shape"])
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"segment {name!r} has a malformed manifest entry "
                f"(dtype {entry.get('dtype')!r}, shape {entry.get('shape')!r}): {exc}"
            ) from exc
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        try:
            array = np.frombuffer(buffer, dtype=dtype, count=count, offset=entry["offset"])
        except ValueError as exc:
            raise StoreError(
                f"segment {name!r} lies outside the snapshot buffer "
                f"(offset {entry['offset']}, {count} x {dtype}): truncated or "
                f"corrupted file ({exc})"
            ) from exc
        array = array.reshape(shape)
        if array.flags.writeable:
            # Shared-memory buffers are writable; the snapshot contract is
            # read-only either way (another process owns the storage).
            array.flags.writeable = False
        return array

    def names(self) -> list[str]:
        """All array names, in manifest order."""
        return list(self._entries)

    def alias_map(self) -> "dict[str, str]":
        """``{alias_name: canonical_name}`` for every aliased manifest entry."""
        return {
            name: entry["alias_of"]
            for name, entry in self._entries.items()
            if "alias_of" in entry
        }

    def entry(self, name: str) -> dict:
        """The raw manifest entry of one array (dtype, shape, offset, nbytes)."""
        if name not in self._entries:
            raise StoreError(f"snapshot has no array {name!r}")
        return dict(self._entries[name])

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def array(self, name: str) -> np.ndarray:
        """The named array — a zero-copy view in mapped mode, else a copy."""
        if self._materialized is not None:
            return self._materialized[name]
        if self._buffer is None:
            raise StoreError("snapshot is closed")
        if name not in self._entries:
            raise StoreError(f"snapshot has no array {name!r}")
        return self._view(self._buffer, name)

    def strings(self, name: str) -> list[str]:
        """Decode a string list written by :meth:`SnapshotWriter.add_strings`."""
        return strings_from_arrays({suffix: self.array(name + suffix) for suffix in _STRING_SUFFIXES}, "")

    def total_bytes(self) -> int:
        """Total unique segment bytes (aliased entries share one segment)."""
        return sum(
            int(entry["nbytes"])
            for entry in self._entries.values()
            if "alias_of" not in entry
        )

    def payload_digest(self) -> str:
        """BLAKE2b over every canonical segment — the writer-side twin of
        :meth:`SnapshotWriter.payload_digest`; equal digests prove the whole
        payload (every array of every embedded object) is bit-identical to
        what was saved."""
        digest = _new_payload_digest()
        for name, entry in self._entries.items():
            if "alias_of" in entry:
                continue
            _digest_segment(
                digest, name, entry["dtype"], tuple(entry["shape"]), self.array(name)
            )
        return digest.hexdigest()

    def verify_segments(self) -> "list[tuple[str, bool, str]]":
        """Per-segment integrity check: ``[(name, ok, detail), ...]``.

        Canonical segments with a recorded ``digest`` manifest key (written
        by ``SnapshotWriter(segment_digests=True)``) are re-hashed and
        compared; segments whose bytes cannot even be viewed (truncation,
        malformed entries) fail with the reader's error. Snapshots written
        without per-segment digests report ``ok`` with an explanatory
        detail — whole-payload verification still covers them.
        """
        results: list[tuple[str, bool, str]] = []
        for name, entry in self._entries.items():
            if "alias_of" in entry:
                results.append((name, True, f"alias of {entry['alias_of']}"))
                continue
            try:
                array = self.array(name)
            except StoreError as exc:
                results.append((name, False, str(exc)))
                continue
            recorded = entry.get("digest")
            if recorded is None:
                results.append((name, True, "no per-segment digest recorded"))
                continue
            derived = segment_digest(name, entry["dtype"], tuple(entry["shape"]), array)
            if derived == recorded:
                results.append((name, True, "digest verified"))
            else:
                results.append(
                    (
                        name,
                        False,
                        f"segment digest mismatch (recorded {recorded}, derived "
                        f"{derived}): the {name.split('/')[0]!r} bundle is corrupted",
                    )
                )
        return results

    # ------------------------------------------------------------ lifetime
    def close(self) -> None:
        """Release the underlying buffer (mapped mode); copies stay usable."""
        self._buffer = None
        closer, self._closer = self._closer, None
        if closer is not None:
            try:
                closer()
            except BufferError:
                # Zero-copy views are still alive; the mapping stays open
                # until they are collected (the OS reclaims it at exit).
                pass

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SnapshotChain:
    """A resolved base → delta₁ → … → deltaₖ snapshot chain, base first.

    :meth:`open` starts from any chain member (usually the tip) and walks
    the manifest ``chain`` links, resolving each parent by basename in the
    child's directory. The chain holds one open :class:`Snapshot` per file;
    :attr:`snapshots` is ordered base first, so ``snapshots[-1]`` (also
    :attr:`tip`) carries the logical state the chain reconstructs.

    Opening performs structural checks only (links resolve, depths agree);
    :meth:`verify_links` additionally re-derives every parent's payload
    digest and compares it to the digest its child recorded at append time,
    proving no file in the ancestry was modified since the delta was diffed
    against it.
    """

    def __init__(self, snapshots: "list[Snapshot]", paths: "list[str]") -> None:
        if not snapshots:
            raise StoreError("a snapshot chain needs at least one snapshot")
        self.snapshots = snapshots
        self.paths = paths

    @classmethod
    def open(cls, path: str | os.PathLike, *, mmap: bool = True, max_depth: int = 4096) -> "SnapshotChain":
        """Open ``path`` and every ancestor it links to (tip → … → base)."""
        snapshots: list[Snapshot] = []
        paths: list[str] = []
        current = os.fspath(path)
        try:
            while True:
                snapshot = Snapshot.open(current, mmap=mmap)
                snapshots.append(snapshot)
                paths.append(current)
                chain = snapshot.chain
                if chain is None:
                    if snapshot.delta is not None:
                        raise StoreError(
                            f"snapshot {current!r} carries a delta spec but no chain link"
                        )
                    break
                if len(snapshots) > max_depth:
                    raise StoreError(f"snapshot chain exceeds {max_depth} segments (cycle?)")
                parent = os.path.join(os.path.dirname(current) or ".", chain["parent"])
                if not os.path.exists(parent):
                    raise StoreError(
                        f"snapshot {current!r} links to missing parent {chain['parent']!r} "
                        f"(expected at {parent!r})"
                    )
                current = parent
        except BaseException:
            for snapshot in snapshots:
                snapshot.close()
            raise
        snapshots.reverse()
        paths.reverse()
        for depth, snapshot in enumerate(snapshots):
            recorded = 0 if snapshot.chain is None else int(snapshot.chain["depth"])
            if recorded != depth:
                raise StoreError(
                    f"chain segment {paths[depth]!r} records depth {recorded} "
                    f"but sits at depth {depth}"
                )
        return cls(snapshots, paths)

    # ------------------------------------------------------------ structure
    @property
    def base(self) -> Snapshot:
        return self.snapshots[0]

    @property
    def tip(self) -> Snapshot:
        return self.snapshots[-1]

    @property
    def depth(self) -> int:
        """Number of delta segments on top of the base (0 = base only)."""
        return len(self.snapshots) - 1

    @property
    def meta(self) -> Any:
        """The tip's manifest meta — the logical state the chain reconstructs."""
        return self.tip.meta

    def total_bytes(self) -> int:
        """Unique payload bytes across every chain segment."""
        return sum(snapshot.total_bytes() for snapshot in self.snapshots)

    # ---------------------------------------------------------- verification
    def verify_links(self) -> None:
        """Check every parent's payload digest against its child's record."""
        for child_index in range(1, len(self.snapshots)):
            child = self.snapshots[child_index]
            parent = self.snapshots[child_index - 1]
            recorded = child.chain["parent_payload"] if child.chain else None
            derived = parent.payload_digest()
            if recorded != derived:
                raise StoreError(
                    f"chain link broken: {self.paths[child_index]!r} was appended onto a "
                    f"parent with payload {recorded}, but {self.paths[child_index - 1]!r} "
                    f"now derives {derived} (parent modified or replaced)"
                )

    # ------------------------------------------------------------- lifetime
    def close(self) -> None:
        for snapshot in self.snapshots:
            snapshot.close()

    def __enter__(self) -> "SnapshotChain":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------------ payload digests
def _new_payload_digest():
    import hashlib

    return hashlib.blake2b(digest_size=16)


def _digest_segment(digest, name: str, dtype_str: str, shape, array: np.ndarray) -> None:
    digest.update(name.encode())
    digest.update(str(dtype_str).encode())
    digest.update(str(tuple(shape)).encode())
    digest.update(np.ascontiguousarray(array).tobytes())


def segment_digest(name: str, dtype_str: str, shape, array: np.ndarray) -> str:
    """Content digest of one segment (same recipe the payload digest folds)."""
    digest = _new_payload_digest()
    _digest_segment(digest, name, dtype_str, shape, array)
    return digest.hexdigest()


# -------------------------------------------------------------- string tables
def encode_strings(strings: Iterable[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pack strings into one UTF-8 byte array plus int64 CSR offsets."""
    blobs = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum([len(b) for b in blobs], out=offsets[1:])
    utf8 = np.frombuffer(b"".join(blobs), dtype=np.uint8).copy()
    return utf8, offsets


def decode_strings(utf8: np.ndarray, offsets: np.ndarray) -> list[str]:
    """Inverse of :func:`encode_strings`."""
    blob = utf8.tobytes()
    bounds = offsets.tolist()
    return [blob[start:stop].decode("utf-8") for start, stop in zip(bounds[:-1], bounds[1:])]


#: The array-name suffixes one string table occupies — the single definition
#: of the convention shared by :meth:`SnapshotWriter.add_strings`,
#: :meth:`Snapshot.strings`, and the object codecs.
_STRING_SUFFIXES = ("#utf8", "#offsets")


def string_table_arrays(strings: Iterable[str]) -> "dict[str, np.ndarray]":
    """A string list as its ``{suffix: array}`` table (see ``_STRING_SUFFIXES``)."""
    utf8, offsets = encode_strings(strings)
    return {"#utf8": utf8, "#offsets": offsets}


def strings_from_arrays(arrays: "Mapping[str, np.ndarray]", prefix: str) -> list[str]:
    """Decode a string table stored under ``prefix`` inside an arrays mapping."""
    return decode_strings(arrays[prefix + "#utf8"], arrays[prefix + "#offsets"])


# ----------------------------------------------------------- JSON-safe tuples
def tag_tuples(value: Any) -> Any:
    """Recursively encode tuples as ``{"__tuple__": [...]}`` for JSON."""
    if isinstance(value, tuple):
        return {"__tuple__": [tag_tuples(v) for v in value]}
    if isinstance(value, list):
        return [tag_tuples(v) for v in value]
    if isinstance(value, Mapping):
        return {k: tag_tuples(v) for k, v in value.items()}
    return value


def untag_tuples(value: Any) -> Any:
    """Inverse of :func:`tag_tuples` (exact tuple/list round trip)."""
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(untag_tuples(v) for v in value["__tuple__"])
        return {k: untag_tuples(v) for k, v in value.items()}
    if isinstance(value, list):
        return [untag_tuples(v) for v in value]
    return value
