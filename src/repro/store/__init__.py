"""Zero-copy persistence: snapshots, delta chains, shared-memory planes, load-and-serve.

Everything the pipeline fits lives in flat numpy arrays (PR 2-4); this
package makes those arrays *move* without serialization:

* :mod:`repro.store.format` — the snapshot container: one buffer (file or
  shared-memory segment) holding a magic + version header, 64-byte-aligned
  raw array segments, and a trailing JSON manifest. ``Snapshot.open(path,
  mmap=True)`` returns arrays that are read-only views over the mapped file
  — zero copies; ``mmap=False`` materializes independent copies. The header
  carries a single integer format version (currently 2); readers accept
  exactly ``SUPPORTED_VERSIONS``, additive manifest keys don't bump it (see
  the module docstring for the full policy and version history).
* :mod:`repro.store.codecs` — ``(meta, arrays)`` state bundles for the
  flat-array core types: :class:`~repro.core.merging.ItemTable`,
  :class:`~repro.core.representation.EmbeddingStore`, all three ANN indexes
  (HNSW snapshots include adjacency CSR and the level-RNG state, so
  ``extend`` after a load continues the exact stream), :class:`~repro.ann.
  cache.IndexCache` contents, fitted encoders, and the pipeline config.
  Restores adopt the stored bytes verbatim; the only recomputed arrays are
  the prepared distance row statistics, a deterministic per-row function of
  the stored vectors — so save → load → continue stays byte-identical.
  Every core type also exposes a *delta state* diffing its bundle against a
  base bundle (``*_delta_state``).
* :mod:`repro.store.delta` — the delta ops themselves (``ref`` / ``alias``
  / row-``patch`` / ``full``), bundle-level diff/replay, and chain folding.
* :mod:`repro.store.plane` — shared-memory task planes for
  ``MultiEM(parallel)``'s process backend
  (``ParallelConfig.shared_memory=True``): one segment per ``map`` call
  carries every task's arrays as a snapshot buffer, workers attach zero-copy
  views and receive only integer descriptors, and array-heavy results come
  back through response segments — no pickled :class:`ItemTable` in either
  direction, bit-identical output to the pickle dispatch.
* :mod:`repro.store.session` — :func:`save_session` /
  :class:`MatchSession`: snapshot a fitted
  :class:`~repro.core.incremental.IncrementalMultiEM` once, then serve
  ``match_new_table`` and nearest-tuple ``query`` calls from a cold process
  without refitting anything; content digests recorded at save time are
  verified on load.

Delta chains (rolling ingest)
-----------------------------

A fitted matcher's first ``save`` writes a self-contained **base**; after
further ``add_table`` calls, ``save`` emits an **append-only delta** next to
it (:func:`save_session_delta`) holding only the changed bytes — unchanged
arrays become zero-byte refs onto the parent, the integrated vector plane
row-patches, and carried-over index-cache entries ref their old segments.
Each delta's manifest links its parent by basename plus payload digest, so
:class:`SnapshotChain` can resolve and verify a whole ancestry;
``load_matcher`` / :meth:`MatchSession.load` accept any chain tip and
reconstruct a state byte-identical to a single full snapshot.
:func:`compact_session` collapses a chain back into one aliased base file
(byte-identical to a direct full save, buffer aliasing included).

Durability (crash safety, fsck, GC)
-----------------------------------

Every file save commits atomically — temp file + fsync + ``os.replace`` +
directory fsync — so a crash leaves either the old state or the new one,
never a torn file (partials are swept on the next open). Mutating
operations serialize on a per-directory writer lock
(:mod:`repro.store.lock`, fail-fast with stale takeover).
:mod:`repro.store.fsck` verifies whole store directories (per-segment
digests, payload digests, chain links), quarantines unrecoverable damage,
rolls a damaged tip back to its deepest intact ancestor (opt-in), and
garbage-collects chain files superseded by a verified compaction
(``compact_session(retire=True)`` writes the authorizing marker). The
fault-injection switchboard behind the crash-matrix tests lives in
:mod:`repro.faults`.

CLI: ``python -m repro.cli snapshot save|load|append|compact|inspect|fsck|gc``
and ``serve-match`` exercise the same paths end to end.
"""

from .format import (
    FORMAT_VERSION,
    SUPPORTED_VERSIONS,
    DeltaWriter,
    Snapshot,
    SnapshotChain,
    SnapshotWriter,
)
from .fsck import (
    FsckReport,
    GcReport,
    deepest_intact,
    fsck_store,
    gc_store,
    sweep_partials,
)
from .lock import StoreLock
from .session import (
    MatchSession,
    compact_session,
    load_matcher,
    save_session,
    save_session_delta,
)

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "DeltaWriter",
    "Snapshot",
    "SnapshotChain",
    "SnapshotWriter",
    "FsckReport",
    "GcReport",
    "deepest_intact",
    "fsck_store",
    "gc_store",
    "sweep_partials",
    "StoreLock",
    "MatchSession",
    "compact_session",
    "load_matcher",
    "save_session",
    "save_session_delta",
]
