"""Zero-copy persistence: snapshots, shared-memory planes, load-and-serve.

Everything the pipeline fits lives in flat numpy arrays (PR 2-4); this
package makes those arrays *move* without serialization:

* :mod:`repro.store.format` — the snapshot container: one buffer (file or
  shared-memory segment) holding a magic + version header, 64-byte-aligned
  raw array segments, and a trailing JSON manifest. ``Snapshot.open(path,
  mmap=True)`` returns arrays that are read-only views over the mapped file
  — zero copies; ``mmap=False`` materializes independent copies. The header
  carries a single integer format version (currently 1); readers reject any
  other version, additive manifest keys don't bump it (see the module
  docstring for the full policy).
* :mod:`repro.store.codecs` — ``(meta, arrays)`` state bundles for the
  flat-array core types: :class:`~repro.core.merging.ItemTable`,
  :class:`~repro.core.representation.EmbeddingStore`, all three ANN indexes
  (HNSW snapshots include adjacency CSR, prepared distance arrays, and the
  level-RNG state, so ``extend`` after a load continues the exact stream),
  :class:`~repro.ann.cache.IndexCache` contents, fitted encoders, and the
  pipeline config. Restores adopt the stored bytes verbatim — nothing is
  recomputed — which is what makes save → load → continue byte-identical.
* :mod:`repro.store.plane` — shared-memory task planes for
  ``MultiEM(parallel)``'s process backend
  (``ParallelConfig.shared_memory=True``): one segment per ``map`` call
  carries every task's arrays as a snapshot buffer, workers attach zero-copy
  views and receive only integer descriptors, and array-heavy results come
  back through response segments — no pickled :class:`ItemTable` in either
  direction, bit-identical output to the pickle dispatch.
* :mod:`repro.store.session` — :func:`save_session` /
  :class:`MatchSession`: snapshot a fitted
  :class:`~repro.core.incremental.IncrementalMultiEM` once, then serve
  ``match_new_table`` and nearest-tuple ``query`` calls from a cold process
  without refitting anything; content digests recorded at save time are
  verified on load.

CLI: ``python -m repro.cli snapshot save|load`` and ``serve-match``
exercise the same paths end to end.
"""

from .format import FORMAT_VERSION, Snapshot, SnapshotWriter
from .session import MatchSession, load_matcher, save_session

__all__ = [
    "FORMAT_VERSION",
    "Snapshot",
    "SnapshotWriter",
    "MatchSession",
    "load_matcher",
    "save_session",
]
