"""State codecs: flat-array core objects ↔ snapshot (meta, arrays) bundles.

Every codec is a pure pair of functions::

    *_state(obj)            -> (meta, {relative_name: ndarray})
    *_from_state(meta, arrays)

where ``meta`` is a JSON-serializable tree and the arrays dict holds raw
numpy buffers. :func:`pack` / :func:`unpack` shuttle a bundle into / out of a
:class:`~repro.store.format.SnapshotWriter` / ``Snapshot`` under a name
prefix (the array-name list rides in the meta under ``"__arrays__"``), so
bundles nest — an :class:`~repro.ann.cache.IndexCache` entry embeds a whole
index bundle under an ``e{i}/index/`` prefix.

Restored arrays are adopted **verbatim** (zero-copy when the snapshot is
memory-mapped): a loaded object computes the exact bytes the saved one did —
CSR bucket tables, adjacency, and RNG states all round-trip as raw state.
The one exception is the prepared distance row statistics (normalized rows /
squared norms), which are a deterministic per-row function of the stored
vectors and are recomputed byte-identically on restore instead of being
persisted — they were the largest derived plane in every snapshot.

Alongside its full state, every core type also has a **delta state** — the
same bundle diffed against a base bundle through :mod:`repro.store.delta`
(``*_delta_state(obj, base_obj) -> (meta, delta_spec, segments)``), which is
what the append-only snapshot chain stores per
:meth:`~repro.core.incremental.IncrementalMultiEM.save`:

* :func:`item_table_delta_state` — the merge keeps untouched items at their
  positions with identical bytes, so the dominant ``(n, d)`` vector plane
  row-patches (changed representatives + appended tail) while the small CSR
  member columns fall back to full storage automatically;
* :func:`embedding_store_delta_state` — strictly append-only: new source
  blocks store outright, existing blocks become zero-byte refs;
* :func:`index_cache_delta_state` — entries are aligned to the base by
  params key and content (:func:`index_cache_pairing`), so a carried-over
  entry refs its old segments even after LRU reordering and a
  prefix-extended HNSW index stores only its adjacency-CSR extension (the
  rewired rows + appended rows per layer) with the advanced PCG64 RNG state
  riding in the entry meta;
* :func:`encoder_delta_state` — fitted encoders never change after ``fit``,
  so their arrays all collapse to refs.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Mapping

import numpy as np

from ..ann.brute_force import BruteForceIndex
from ..ann.cache import IndexCache
from ..ann.hnsw import HNSWIndex
from ..ann.lsh import LSHIndex
from ..config import (
    MergingConfig,
    MultiEMConfig,
    ParallelConfig,
    PruningConfig,
    RepresentationConfig,
)
from ..core.merging import ItemTable
from ..core.representation import EmbeddingStore
from ..exceptions import StoreError
from .delta import apply_bundle, bytes_equal, diff_bundle
from .format import (
    Snapshot,
    SnapshotWriter,
    string_table_arrays,
    strings_from_arrays,
    tag_tuples,
    untag_tuples,
)


# ------------------------------------------------------------------- plumbing
def pack(writer: SnapshotWriter, prefix: str, state) -> dict:
    """Write a ``(meta, arrays)`` bundle under ``prefix``; returns the meta."""
    meta, arrays = state
    meta = dict(meta)
    meta["__arrays__"] = list(arrays)
    for name, array in arrays.items():
        writer.add_array(prefix + name, array)
    return meta


def unpack(snapshot: Snapshot, prefix: str, meta: dict) -> "dict[str, np.ndarray]":
    """Read back the arrays of a bundle written by :func:`pack`."""
    return {name: snapshot.array(prefix + name) for name in meta["__arrays__"]}


def unpack_arrays(
    arrays: "Mapping[str, np.ndarray]", prefix: str, meta: dict
) -> "dict[str, np.ndarray]":
    """:func:`unpack` against a flat logical-array mapping (chain restores)."""
    return {name: arrays[prefix + name] for name in meta["__arrays__"]}


def _prefixed(prefix: str, arrays: "Mapping[str, np.ndarray]") -> "dict[str, np.ndarray]":
    return {prefix + name: array for name, array in arrays.items()}


# ------------------------------------------------------------------ ItemTable
def item_table_state(table: ItemTable):
    """State bundle of a flat merge-item table."""
    return (
        {"type": "item_table", "sources": list(table.sources)},
        {
            "vectors": table.vectors,
            "member_sources": table.member_sources,
            "member_indices": table.member_indices,
            "member_offsets": table.member_offsets,
        },
    )


def item_table_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]") -> ItemTable:
    return ItemTable(
        arrays["vectors"],
        arrays["member_sources"],
        arrays["member_indices"],
        arrays["member_offsets"],
        tuple(meta["sources"]),
    )


# ------------------------------------------------------------------ ShardPlan
def shard_plan_state(item_owners: np.ndarray, num_shards: int, shard_key: str):
    """State bundle of a sharded fit's owner assignment over the integrated table.

    One ``int32`` owner id per integrated item (``0..num_shards-1`` cores,
    ``num_shards`` spill); the key family and shard count ride in the meta so
    a restored matcher can sanity-check them against its config.
    """
    return (
        {"type": "shard_plan", "num_shards": int(num_shards), "shard_key": shard_key},
        {"item_owners": np.ascontiguousarray(item_owners, dtype=np.int32)},
    )


def shard_plan_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]") -> np.ndarray:
    if meta.get("type") != "shard_plan":
        raise StoreError(f"expected a shard_plan bundle, got {meta.get('type')!r}")
    return arrays["item_owners"]


# ------------------------------------------------------------- EmbeddingStore
def embedding_store_state(store: EmbeddingStore):
    """State bundle of the flat embedding column store (one block per source)."""
    blocks = store.blocks()
    arrays = {f"block{i}": matrix for i, matrix in enumerate(blocks.values())}
    return {"type": "embedding_store", "tables": list(blocks)}, arrays


def embedding_store_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]") -> EmbeddingStore:
    return EmbeddingStore.from_blocks(
        {name: arrays[f"block{i}"] for i, name in enumerate(meta["tables"])}
    )


# -------------------------------------------------------------------- indexes
_INDEX_TYPES = {"hnsw": HNSWIndex, "lsh": LSHIndex, "brute-force": BruteForceIndex}


def index_state(index):
    """State bundle of any snapshot-capable ANN index."""
    snapshot_state = getattr(index, "snapshot_state", None)
    if snapshot_state is None:
        raise StoreError(f"index type {type(index).__name__} does not support snapshots")
    return snapshot_state()


def index_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]"):
    cls = _INDEX_TYPES.get(meta.get("backend"))
    if cls is None:
        raise StoreError(f"unknown index backend {meta.get('backend')!r} in snapshot")
    return cls.from_snapshot_state(meta, dict(arrays))


# ----------------------------------------------------------------- IndexCache
def index_cache_state(cache: IndexCache):
    """State bundle of an index cache — entries in LRU order (oldest first).

    ``params_key`` tuples are JSON-tagged so they restore as *tuples* and
    hash-compare equal to the keys future lookups construct at runtime.
    """
    entries_meta = []
    arrays: dict[str, np.ndarray] = {}
    for i, (params_key, vectors, index) in enumerate(cache.snapshot()):
        index_meta, index_arrays = index_state(index)
        index_meta = dict(index_meta)
        index_meta["__arrays__"] = list(index_arrays)
        arrays[f"e{i}/vectors"] = vectors
        arrays.update(_prefixed(f"e{i}/index/", index_arrays))
        entries_meta.append({"params_key": tag_tuples(params_key), "index": index_meta})
    return (
        {"type": "index_cache", "max_entries": cache.max_entries, "entries": entries_meta},
        arrays,
    )


def index_cache_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]") -> IndexCache:
    cache = IndexCache(max_entries=meta["max_entries"])
    entries = []
    for i, entry_meta in enumerate(meta["entries"]):
        index_meta = entry_meta["index"]
        index_arrays = {
            name: arrays[f"e{i}/index/{name}"] for name in index_meta["__arrays__"]
        }
        entries.append(
            (
                untag_tuples(entry_meta["params_key"]),
                arrays[f"e{i}/vectors"],
                index_from_state(index_meta, index_arrays),
            )
        )
    cache.seed(entries)
    return cache


# ------------------------------------------------------------------- encoders
def encoder_state(encoder):
    """State bundle of a fitted sentence encoder.

    Accepts the pipeline's :class:`~repro.embedding.cache.CachingEncoder`
    wrapper (unwrapped transparently — the exact-text cache is a rebuildable
    optimization, not state) around either from-scratch encoder.
    """
    from ..embedding import CachingEncoder, HashedNGramEncoder
    from ..embedding.svd import TfidfSvdEncoder

    if isinstance(encoder, CachingEncoder):
        encoder = encoder.inner
    if isinstance(encoder, HashedNGramEncoder):
        meta = {
            "type": "encoder",
            "kind": "hashed-ngram",
            "dimension": encoder.dimension,
            "ngram_range": list(encoder.ngram_range),
            "max_tokens": encoder.max_tokens,
            "token_weight": encoder.token_weight,
            "use_idf": encoder.use_idf,
            "numeric_weight_floor": encoder.numeric_weight_floor,
            "seed": encoder.seed,
            "vocabulary": None,
        }
        arrays: dict[str, np.ndarray] = {}
        vocabulary = encoder._vocabulary
        if vocabulary is not None:
            tokens = sorted(vocabulary.token_to_index, key=vocabulary.token_to_index.get)
            meta["vocabulary"] = {"num_documents": vocabulary.num_documents}
            arrays.update(_prefixed("vocab/tokens", string_table_arrays(tokens)))
            arrays["vocab/df"] = np.fromiter(
                (vocabulary.document_frequency[token] for token in tokens),
                dtype=np.int64,
                count=len(tokens),
            )
        return meta, arrays
    if isinstance(encoder, TfidfSvdEncoder):
        vectorizer = encoder._vectorizer
        if encoder._basis is None and encoder._projection is None:
            raise StoreError("cannot snapshot an unfitted TfidfSvdEncoder")
        terms = sorted(vectorizer.vocabulary_, key=vectorizer.vocabulary_.get)
        meta = {
            "type": "encoder",
            "kind": "tfidf-svd",
            "dimension": encoder.dimension,
            "seed": encoder.seed,
            "analyzer": vectorizer.analyzer,
            "min_df": vectorizer.min_df,
            "ngram_range": list(vectorizer.ngram_range),
            "projection_features": (
                None if encoder._projection is None else encoder._projection._input_dim
            ),
        }
        arrays = dict(_prefixed("terms", string_table_arrays(terms)))
        arrays["idf"] = vectorizer.idf_
        if encoder._basis is not None:
            arrays["basis"] = encoder._basis
        return meta, arrays
    raise StoreError(f"encoder type {type(encoder).__name__} does not support snapshots")


def encoder_from_state(meta: dict, arrays: "Mapping[str, np.ndarray]"):
    from ..embedding import HashedNGramEncoder
    from ..embedding.svd import TfidfSvdEncoder

    if meta["kind"] == "hashed-ngram":
        encoder = HashedNGramEncoder(
            dimension=meta["dimension"],
            ngram_range=tuple(meta["ngram_range"]),
            max_tokens=meta["max_tokens"],
            token_weight=meta["token_weight"],
            use_idf=meta["use_idf"],
            numeric_weight_floor=meta["numeric_weight_floor"],
            seed=meta["seed"],
        )
        if meta["vocabulary"] is not None:
            from collections import Counter

            from ..text.vocab import Vocabulary

            tokens = strings_from_arrays(arrays, "vocab/tokens")
            df = arrays["vocab/df"].tolist()
            encoder._vocabulary = Vocabulary(
                token_to_index={token: i for i, token in enumerate(tokens)},
                document_frequency=Counter(dict(zip(tokens, df))),
                num_documents=meta["vocabulary"]["num_documents"],
            )
        return encoder
    if meta["kind"] == "tfidf-svd":
        encoder = TfidfSvdEncoder(
            dimension=meta["dimension"],
            analyzer=meta["analyzer"],
            ngram_range=tuple(meta["ngram_range"]),
            min_df=meta["min_df"],
            seed=meta["seed"],
        )
        terms = strings_from_arrays(arrays, "terms")
        encoder._vectorizer.vocabulary_ = {term: i for i, term in enumerate(terms)}
        encoder._vectorizer.idf_ = arrays["idf"]
        if meta["projection_features"] is not None:
            from ..embedding.random_projection import GaussianRandomProjection

            encoder._projection = GaussianRandomProjection(meta["dimension"], seed=meta["seed"])
            encoder._projection.fit(meta["projection_features"])
            encoder._basis = None
        else:
            encoder._basis = arrays["basis"]
            encoder._projection = None
        return encoder
    raise StoreError(f"unknown encoder kind {meta['kind']!r} in snapshot")


# --------------------------------------------------------------- delta states
def _bundle_delta(new_state, base_state, pairing: "dict[str, str] | None" = None):
    """Shared ``(meta, delta_spec, segments)`` shape of every delta codec."""
    meta, arrays = new_state
    _, base_arrays = base_state
    spec, segments = diff_bundle(arrays, base_arrays, pairing=pairing)
    meta = dict(meta)
    meta["__arrays__"] = list(arrays)
    return meta, spec, segments


def _bundle_from_delta(meta: dict, spec: dict, segments, base_state):
    _, base_arrays = base_state
    return apply_bundle(spec, base_arrays, lambda name: segments[name])


def item_table_delta_state(table: ItemTable, base_table: ItemTable):
    """Delta bundle of an item table against a base table (row patches)."""
    return _bundle_delta(item_table_state(table), item_table_state(base_table))


def item_table_from_delta(
    meta: dict, spec: dict, segments, base_table: ItemTable
) -> ItemTable:
    arrays = _bundle_from_delta(meta, spec, segments, item_table_state(base_table))
    return item_table_from_state(meta, arrays)


def embedding_store_delta_state(store: EmbeddingStore, base_store: EmbeddingStore):
    """Delta bundle of an embedding store (new blocks only; old blocks ref)."""
    return _bundle_delta(embedding_store_state(store), embedding_store_state(base_store))


def embedding_store_from_delta(
    meta: dict, spec: dict, segments, base_store: EmbeddingStore
) -> EmbeddingStore:
    arrays = _bundle_from_delta(meta, spec, segments, embedding_store_state(base_store))
    return embedding_store_from_state(meta, arrays)


def encoder_delta_state(encoder, base_encoder):
    """Delta bundle of a fitted encoder (all refs — encoders are fit-frozen)."""
    return _bundle_delta(encoder_state(encoder), encoder_state(base_encoder))


def index_cache_pairing(new_state, base_state) -> "dict[str, str]":
    """Align cache entries of a new state onto a base state's segments.

    Returns a ``{new_name: base_name}`` pairing (bundle-relative ``e{j}/…``
    names) mapping each new entry onto the base entry it evolved from: the
    first byte-identical twin with the same params key, else the longest
    plausible prefix (same params key, fewer rows, matching first/last
    prefix rows — a cheap screen; the byte-exact row diff downstream decides
    what actually changed, so a miscast pairing can only cost bytes, never
    correctness). Unpaired entries diff against nothing and store outright.
    """
    new_meta, new_arrays = new_state
    base_meta, base_arrays = base_state
    pairing: dict[str, str] = {}
    used: set[int] = set()
    for j, entry in enumerate(new_meta["entries"]):
        new_vectors = new_arrays[f"e{j}/vectors"]
        exact = None
        best = None
        best_rows = 0
        for i, base_entry in enumerate(base_meta["entries"]):
            if i in used or base_entry["params_key"] != entry["params_key"]:
                continue
            base_vectors = base_arrays.get(f"e{i}/vectors")
            if (
                base_vectors is None
                or base_vectors.dtype != new_vectors.dtype
                or base_vectors.shape[1:] != new_vectors.shape[1:]
            ):
                continue
            if bytes_equal(base_vectors, new_vectors):
                exact = i
                break
            rows = base_vectors.shape[0]
            if (
                0 < rows < new_vectors.shape[0]
                and rows > best_rows
                and bytes_equal(base_vectors[:1], new_vectors[:1])
                and bytes_equal(base_vectors[rows - 1 : rows], new_vectors[rows - 1 : rows])
            ):
                best, best_rows = i, rows
        pick = exact if exact is not None else best
        if pick is None:
            continue
        used.add(pick)
        pairing[f"e{j}/vectors"] = f"e{pick}/vectors"
        for name in entry["index"]["__arrays__"]:
            pairing[f"e{j}/index/{name}"] = f"e{pick}/index/{name}"
    return pairing


def index_cache_delta_state(cache: IndexCache, base_cache: IndexCache):
    """Delta bundle of an index cache (entries aligned, extensions patched)."""
    new_state = index_cache_state(cache)
    base_state = index_cache_state(base_cache)
    return _bundle_delta(new_state, base_state, index_cache_pairing(new_state, base_state))


def index_cache_from_delta(
    meta: dict, spec: dict, segments, base_cache: IndexCache
) -> IndexCache:
    arrays = _bundle_from_delta(meta, spec, segments, index_cache_state(base_cache))
    return index_cache_from_state(meta, arrays)


# --------------------------------------------------------------------- config
def config_to_meta(config: MultiEMConfig) -> dict:
    """JSON tree of a pipeline config (tuples are only in per-field defaults)."""
    return asdict(config)


def config_from_meta(meta: dict) -> MultiEMConfig:
    config = MultiEMConfig(
        representation=RepresentationConfig(**meta["representation"]),
        merging=MergingConfig(**meta["merging"]),
        pruning=PruningConfig(**meta["pruning"]),
        parallel=ParallelConfig(**meta["parallel"]),
    )
    config.validate()
    return config


# -------------------------------------------------------------------- digests
def arrays_digest(arrays: "Mapping[str, np.ndarray]", *labels: str) -> str:
    """BLAKE2b content digest over named arrays (shape + dtype + raw bytes)."""
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    for label in labels:
        digest.update(label.encode())
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def item_table_digest(table: ItemTable) -> str:
    """Content digest of a flat item table (vectors + members + sources)."""
    meta, arrays = item_table_state(table)
    return arrays_digest(arrays, *meta["sources"])


def embedding_store_digest(store: EmbeddingStore) -> str:
    """Content digest of an embedding store (per-source blocks, in order)."""
    meta, arrays = embedding_store_state(store)
    return arrays_digest(arrays, *meta["tables"])


def tuples_digest(tuples) -> str:
    """Order-independent digest of predicted match tuples."""
    import hashlib

    canonical = sorted(
        ",".join(f"{ref.source}:{ref.index}" for ref in sorted(group)) for group in tuples
    )
    return hashlib.blake2b("|".join(canonical).encode(), digest_size=16).hexdigest()
