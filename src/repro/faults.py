"""Deterministic, seeded fault injection for the store and parallel planes.

The durability claims of :mod:`repro.store` (crash-safe saves, fsck/repair,
chain GC) and the self-healing claims of :mod:`repro.core.parallel` (pool
restart, serial degradation) are only worth something if they are *tested*
against the failures they guard — a torn write, a dropped fsync, a failed
``os.replace``, a flipped bit, a worker killed mid-``map``. This module is
the single switchboard those failures come through:

* **VFS faults** — :mod:`repro.store.format` routes every durable file
  operation through the hooks below (:func:`open_for_write`,
  :func:`fsync_handle`, :func:`fsync_dir`, :func:`replace`,
  :func:`read_bytes`). With no plan active every hook is a thin passthrough;
  with a plan active the hooks count operation boundaries and fire the
  plan's faults at exact, reproducible points.
* **Pool-worker faults** — :mod:`repro.core.parallel` asks
  :func:`claim_worker_fault` per dispatched task; a claimed fault travels to
  the worker, which executes it (``os._exit`` for *kill*, a long sleep for
  *hang*) before touching the task. Claims happen parent-side, so a
  one-shot fault stays one-shot even though the faulted worker dies.

Activation
----------

* **Tests** use the :func:`inject` context manager::

      with faults.inject(FaultPlan(crash_write=3)):
          matcher.save(path)        # raises InjectedCrash at write #3

* **Whole processes** (subprocess tests, manual chaos runs) set the
  ``REPRO_FAULTS`` environment variable to a comma/semicolon-separated
  ``key=value`` spec, parsed by :func:`plan_from_spec` on first use::

      REPRO_FAULTS="crash_write=3,torn=0.5" python -m repro.cli snapshot ...

Crash-point enumeration
-----------------------

A default :class:`FaultPlan` fires nothing but still counts every boundary
in :attr:`FaultPlan.counters` — run the operation once under an observer
plan, read ``plan.counters["write"]`` / ``["fsync"]`` / ``["replace"]``, and
parametrize one crash per boundary. That is how the crash-point matrix in
``tests/store/test_faults.py`` covers *every* write boundary of
``save``/``append``/``compact`` without hard-coding layout knowledge.

Crash semantics
---------------

:class:`InjectedCrash` simulates the *machine dying*: cleanup code must
behave as if the process vanished (e.g. ``atomic_output`` leaves its partial
temp file on disk instead of unlinking it) so recovery paths see exactly
what a real crash leaves behind. :class:`InjectedFault` simulates an
*error returned to the caller* (a failed ``os.replace``): normal error
handling — including cleanup — applies.

Everything is deterministic: faults fire at fixed operation indices, and the
only derived quantity (which byte of a torn write survives, which bit flips
on a read) comes from ``seed`` through a fixed recurrence, never from global
RNG state.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field

from .exceptions import ReproError


class InjectedFault(ReproError):
    """A deliberately injected failure, reported to the caller like a real one."""


class InjectedCrash(InjectedFault):
    """A simulated process/machine death: cleanup handlers must NOT tidy up."""


@dataclass
class FaultPlan:
    """One deterministic fault schedule; all indices are 1-based and counted
    per plan, so re-running the same operation under the same plan fires the
    same fault at the same boundary.

    A plan with every fault field left at ``None``/``False`` is a pure
    *observer*: it fires nothing but still counts boundaries in
    :attr:`counters` (keys ``"write"``, ``"fsync"``, ``"fsync_dir"``,
    ``"replace"``, ``"read"``).
    """

    seed: int = 0
    #: Tear the N-th counted ``write()`` call: only ``torn_fraction`` of its
    #: bytes land, then the process "dies" (:class:`InjectedCrash`).
    crash_write: int | None = None
    torn_fraction: float = 0.5
    #: Die at the N-th file-fsync boundary (data may or may not have landed).
    crash_fsync: int | None = None
    #: Silently skip every fsync (the classic lying-disk failure mode).
    drop_fsync: bool = False
    #: Fail the N-th ``os.replace`` with :class:`InjectedFault` (not a crash:
    #: the writer sees the error and runs its normal cleanup).
    fail_replace: int | None = None
    #: Flip one bit in the data returned by the N-th counted file read.
    flip_read: int | None = None
    #: Byte offset of the flip; ``None`` derives one from ``seed`` and size.
    flip_offset: int | None = None
    #: Pool-worker fault: ``"kill"`` (``os._exit``) or ``"hang"`` (sleep).
    worker_fault: str | None = None
    #: Task index (within one ``map`` round) the worker fault attaches to.
    worker_fault_task: int = 0
    #: Re-arm the worker fault after every claim (tests the retry-exhausted →
    #: serial-degradation path); default is one-shot.
    worker_fault_repeat: bool = False
    worker_hang_seconds: float = 3600.0
    #: Operation-boundary counts observed so far (also the observer output).
    counters: dict = field(default_factory=dict)

    def note(self, op: str) -> int:
        """Count one operation boundary; returns the new 1-based count."""
        count = self.counters.get(op, 0) + 1
        self.counters[op] = count
        return count


_PLAN: FaultPlan | None = None
_ENV_CHECKED = False

_SPEC_FIELDS = {
    "seed": int,
    "crash_write": int,
    "torn": float,
    "crash_fsync": int,
    "drop_fsync": int,
    "fail_replace": int,
    "flip_read": int,
    "flip_offset": int,
    "worker": str,
    "worker_task": int,
    "worker_repeat": int,
    "hang_seconds": float,
}

_SPEC_TO_ATTR = {
    "torn": "torn_fraction",
    "drop_fsync": "drop_fsync",
    "worker": "worker_fault",
    "worker_task": "worker_fault_task",
    "worker_repeat": "worker_fault_repeat",
    "hang_seconds": "worker_hang_seconds",
}


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Example: ``"crash_write=3,torn=0.25"`` or ``"worker=kill,worker_task=1"``.
    Unknown keys raise so a typo never silently disables a chaos run.
    """
    plan = FaultPlan()
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise InjectedFault(f"malformed REPRO_FAULTS token {token!r} (expected key=value)")
        key, _, raw = token.partition("=")
        key = key.strip()
        if key not in _SPEC_FIELDS:
            raise InjectedFault(
                f"unknown REPRO_FAULTS key {key!r}; known keys: {sorted(_SPEC_FIELDS)}"
            )
        value = _SPEC_FIELDS[key](raw.strip())
        attr = _SPEC_TO_ATTR.get(key, key)
        if attr in ("drop_fsync", "worker_fault_repeat"):
            value = bool(value)
        setattr(plan, attr, value)
    if plan.worker_fault is not None and plan.worker_fault not in ("kill", "hang"):
        raise InjectedFault(f"unknown worker fault {plan.worker_fault!r}; use kill or hang")
    return plan


def active() -> FaultPlan | None:
    """The currently active plan (context-injected, else ``REPRO_FAULTS``)."""
    global _ENV_CHECKED, _PLAN
    if _PLAN is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get("REPRO_FAULTS")
        if spec:
            _PLAN = plan_from_spec(spec)
    return _PLAN


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Activate ``plan`` for the duration of the block (plans may nest)."""
    global _PLAN, _ENV_CHECKED
    previous, previous_checked = _PLAN, _ENV_CHECKED
    _PLAN, _ENV_CHECKED = plan, True
    try:
        yield plan
    finally:
        _PLAN, _ENV_CHECKED = previous, previous_checked


# ------------------------------------------------------------------ VFS hooks
class _FaultyWriter:
    """File-handle proxy that counts writes and tears the fated one.

    Zero-length writes (alignment padding can be empty) are passed through
    uncounted so crash-point indices name boundaries where bytes actually
    move.
    """

    def __init__(self, handle, plan: FaultPlan) -> None:
        self._handle = handle
        self._plan = plan

    def write(self, data) -> int:
        view = memoryview(data)
        if len(view) == 0:
            return self._handle.write(data)
        plan = self._plan
        count = plan.note("write")
        if plan.crash_write == count:
            kept = int(len(view) * plan.torn_fraction)
            self._handle.write(view[:kept])
            self._handle.flush()
            raise InjectedCrash(
                f"injected crash at write boundary {count} "
                f"({kept}/{len(view)} bytes of the torn write landed)"
            )
        return self._handle.write(data)

    def __getattr__(self, name):
        return getattr(self._handle, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._handle.close()


def open_for_write(path: str, mode: str = "wb"):
    """``open`` for durable writes; wraps the handle when a plan is active."""
    handle = open(path, mode)
    plan = active()
    return handle if plan is None else _FaultyWriter(handle, plan)


def fsync_handle(handle) -> None:
    """Flush + ``os.fsync`` one file handle, honouring fsync faults."""
    plan = active()
    if plan is not None:
        count = plan.note("fsync")
        if plan.crash_fsync == count:
            raise InjectedCrash(f"injected crash at fsync boundary {count}")
        if plan.drop_fsync:
            handle.flush()  # the data reaches the page cache, never the disk
            return
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(path: str) -> None:
    """Best-effort directory fsync (persists the rename itself)."""
    plan = active()
    if plan is not None:
        plan.note("fsync_dir")
        if plan.drop_fsync:
            return
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir-fsync
        pass
    finally:
        os.close(fd)


def replace(src: str, dst: str) -> None:
    """``os.replace`` with an injectable failure at the publish boundary."""
    plan = active()
    if plan is not None:
        count = plan.note("replace")
        if plan.fail_replace == count:
            raise InjectedFault(
                f"injected os.replace failure at boundary {count} "
                f"({os.path.basename(src)} -> {os.path.basename(dst)})"
            )
    os.replace(src, dst)


def reads_are_faulty() -> bool:
    """Whether the active plan corrupts reads (readers then avoid mmap)."""
    plan = active()
    return plan is not None and plan.flip_read is not None


def read_bytes(path: str) -> bytes:
    """Read a whole file, flipping one seeded bit when the plan says so."""
    with open(path, "rb") as handle:
        data = handle.read()
    plan = active()
    if plan is None or plan.flip_read is None:
        return data
    count = plan.note("read")
    if count != plan.flip_read or not data:
        return data
    offset = plan.flip_offset
    if offset is None:
        # Fixed LCG step over the seed — deterministic, spread over the file.
        offset = (plan.seed * 6364136223846793005 + 1442695040888963407) % len(data)
    mutated = bytearray(data)
    mutated[offset % len(data)] ^= 1 << (plan.seed % 8)
    return bytes(mutated)


# --------------------------------------------------------------- pool workers
def claim_worker_fault(task_index: int) -> dict | None:
    """Claim the plan's worker fault for one dispatched task (parent side).

    Returns the picklable fault spec to ship with the task, or ``None``.
    One-shot by default: the claim is recorded parent-side (the faulted
    worker dies, so worker-side state could never make it one-shot).
    """
    plan = active()
    if plan is None or plan.worker_fault is None:
        return None
    if task_index != plan.worker_fault_task:
        return None
    if not plan.worker_fault_repeat and plan.counters.get("worker_fault_claimed"):
        return None
    plan.counters["worker_fault_claimed"] = plan.counters.get("worker_fault_claimed", 0) + 1
    return {"kind": plan.worker_fault, "hang_seconds": plan.worker_hang_seconds}


def execute_worker_fault(spec: dict) -> None:
    """Run a claimed worker fault inside the pool worker."""
    if spec["kind"] == "kill":
        os._exit(86)  # simulate SIGKILL: no cleanup, no exception, just gone
    if spec["kind"] == "hang":
        time.sleep(spec["hang_seconds"])
        return
    raise InjectedFault(f"unknown worker fault kind {spec['kind']!r}")
