"""Token blocking: cheap candidate-pair generation from shared tokens.

Blocking is the coarse filtering step of classical two-table EM (Section II-A
of the paper). MultiEM itself does not need a separate blocker — the mutual
top-K ANN search plays that role — but the baselines and the bring-your-own-
pipeline users benefit from a standalone blocker, and it serves as a point of
comparison for the ANN-based candidate generation.

The blocker indexes every record under its (optionally rarest-n) tokens and
emits cross-table pairs that share at least one block, skipping blocks larger
than ``max_block_size`` (stop-word style blocks generate quadratic noise).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..data.entity import EntityRef
from ..data.serialization import serialize_entity
from ..data.table import Table
from ..exceptions import ConfigurationError
from ..text.tokenizer import word_tokens


@dataclass(frozen=True)
class BlockingStats:
    """Diagnostics of one blocking run."""

    num_blocks: int
    num_candidate_pairs: int
    num_skipped_blocks: int


class TokenBlocker:
    """Generate candidate cross-table pairs from shared tokens.

    Args:
        max_block_size: blocks with more records than this are skipped.
        min_token_length: tokens shorter than this are ignored.
        attributes: restrict blocking keys to these attributes (default: all).
    """

    def __init__(
        self,
        max_block_size: int = 200,
        min_token_length: int = 3,
        attributes: tuple[str, ...] | None = None,
    ) -> None:
        if max_block_size < 2:
            raise ConfigurationError("max_block_size must be >= 2")
        if min_token_length < 1:
            raise ConfigurationError("min_token_length must be >= 1")
        self.max_block_size = max_block_size
        self.min_token_length = min_token_length
        self.attributes = attributes

    def _blocking_keys(self, table: Table) -> dict[str, list[EntityRef]]:
        blocks: dict[str, list[EntityRef]] = defaultdict(list)
        for entity in table.entities():
            text = serialize_entity(entity, self.attributes)
            for token in set(word_tokens(text)):
                if len(token) >= self.min_token_length:
                    blocks[token].append(entity.ref)
        return blocks

    def candidate_pairs(
        self, left: Table, right: Table
    ) -> tuple[set[tuple[EntityRef, EntityRef]], BlockingStats]:
        """Cross-table candidate pairs sharing at least one token block."""
        left_blocks = self._blocking_keys(left)
        right_blocks = self._blocking_keys(right)
        pairs: set[tuple[EntityRef, EntityRef]] = set()
        skipped = 0
        shared_tokens = set(left_blocks) & set(right_blocks)
        for token in shared_tokens:
            left_refs = left_blocks[token]
            right_refs = right_blocks[token]
            if len(left_refs) * len(right_refs) > self.max_block_size**2:
                skipped += 1
                continue
            for left_ref in left_refs:
                for right_ref in right_refs:
                    pairs.add((left_ref, right_ref))
        stats = BlockingStats(
            num_blocks=len(shared_tokens),
            num_candidate_pairs=len(pairs),
            num_skipped_blocks=skipped,
        )
        return pairs, stats

    def recall(
        self,
        pairs: Iterable[tuple[EntityRef, EntityRef]],
        truth_pairs: Iterable[tuple[EntityRef, EntityRef]],
    ) -> float:
        """Fraction of ground-truth pairs surviving blocking (pair completeness)."""
        truth = {(min(a, b), max(a, b)) for a, b in truth_pairs}
        if not truth:
            return 0.0
        produced = {(min(a, b), max(a, b)) for a, b in pairs}
        return len(truth & produced) / len(truth)
