"""Embedding-neighbourhood blocking: ANN top-K candidates between two tables.

The embedding analogue of token blocking — candidates are each record's top-K
approximate nearest neighbours on the other side. This is exactly the
candidate set MultiEM's merging stage considers (before the mutuality and
distance filters), exposed as a reusable blocker so it can be compared with
token blocking on pair completeness and candidate volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ann.mutual import create_index
from ..data.entity import EntityRef
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NeighborhoodBlockingResult:
    """Candidate pairs plus simple volume statistics."""

    pairs: set[tuple[EntityRef, EntityRef]]
    candidates_per_record: float


def neighborhood_candidates(
    left_refs: list[EntityRef],
    left_vectors: np.ndarray,
    right_refs: list[EntityRef],
    right_vectors: np.ndarray,
    *,
    k: int = 5,
    metric: str = "cosine",
    backend: str = "auto",
) -> NeighborhoodBlockingResult:
    """Top-K neighbourhood candidate pairs between two embedded tables."""
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    if len(left_refs) != len(left_vectors) or len(right_refs) != len(right_vectors):
        raise ConfigurationError("refs and vectors must align")
    if not left_refs or not right_refs:
        return NeighborhoodBlockingResult(pairs=set(), candidates_per_record=0.0)
    index = create_index(backend, metric, size_hint=len(right_refs)).build(right_vectors)
    neighbor_indices, _ = index.query(left_vectors, min(k, len(right_refs)))
    pairs: set[tuple[EntityRef, EntityRef]] = set()
    for row, neighbors in enumerate(neighbor_indices):
        for neighbor in neighbors:
            if neighbor >= 0:
                pairs.add((left_refs[row], right_refs[int(neighbor)]))
    return NeighborhoodBlockingResult(
        pairs=pairs, candidates_per_record=len(pairs) / max(len(left_refs), 1)
    )
