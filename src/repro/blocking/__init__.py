"""Blocking substrate: token blocking and embedding-neighbourhood blocking."""

from .neighborhood import NeighborhoodBlockingResult, neighborhood_candidates
from .token_blocking import BlockingStats, TokenBlocker

__all__ = [
    "TokenBlocker",
    "BlockingStats",
    "neighborhood_candidates",
    "NeighborhoodBlockingResult",
]
