"""Reading and writing datasets on disk.

Datasets are stored as a directory of CSV files (one per source table) plus a
``ground_truth.json`` file listing the matched tuples and a ``metadata.json``
file. This mirrors how the public benchmarks the paper uses are distributed
(one CSV per source, one mapping file).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..exceptions import DataError
from .dataset import MatchTuple, MultiTableDataset
from .entity import EntityRef
from .table import Table

_GROUND_TRUTH_FILE = "ground_truth.json"
_METADATA_FILE = "metadata.json"


def write_table_csv(table: Table, path: str | Path) -> None:
    """Write one table to a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema)
        for i in range(len(table)):
            writer.writerow(table.row(i))


def read_table_csv(path: str | Path, name: str | None = None) -> Table:
    """Read one table from a CSV file written by :func:`write_table_csv`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"table file {path} does not exist")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            schema = next(reader)
        except StopIteration as exc:
            raise DataError(f"table file {path} is empty") from exc
        table = Table(name or path.stem, schema)
        for row in reader:
            if not row:
                continue
            table.append(row)
    return table


def save_dataset(dataset: MultiTableDataset, directory: str | Path) -> Path:
    """Persist a dataset to ``directory`` (one CSV per table + JSON sidecars)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in dataset.table_list():
        write_table_csv(table, directory / f"{table.name}.csv")
    truth_payload = [
        sorted([ref.source, ref.index] for ref in tup) for tup in sorted(dataset.ground_truth, key=sorted)
    ]
    (directory / _GROUND_TRUTH_FILE).write_text(json.dumps(truth_payload), encoding="utf-8")
    metadata = dict(dataset.metadata)
    metadata["name"] = dataset.name
    metadata["tables"] = [table.name for table in dataset.table_list()]
    (directory / _METADATA_FILE).write_text(json.dumps(metadata, default=str), encoding="utf-8")
    return directory


def load_dataset(directory: str | Path) -> MultiTableDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    metadata_path = directory / _METADATA_FILE
    if not metadata_path.exists():
        raise DataError(f"{directory} does not contain {_METADATA_FILE}")
    metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    name = metadata.pop("name", directory.name)
    table_names = metadata.pop("tables", None)
    if table_names is None:
        table_names = sorted(p.stem for p in directory.glob("*.csv"))
    tables = [read_table_csv(directory / f"{table_name}.csv", table_name) for table_name in table_names]
    truth_path = directory / _GROUND_TRUTH_FILE
    ground_truth: list[MatchTuple] = []
    if truth_path.exists():
        payload = json.loads(truth_path.read_text(encoding="utf-8"))
        for group in payload:
            ground_truth.append(frozenset(EntityRef(source, int(index)) for source, index in group))
    return MultiTableDataset.from_tables(name, tables, ground_truth, metadata)


def refs_to_json(groups: Iterable[Iterable[EntityRef]]) -> list[list[list[object]]]:
    """Convert groups of refs into a JSON-serializable structure."""
    return [sorted([ref.source, ref.index] for ref in group) for group in groups]
