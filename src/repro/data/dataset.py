"""Multi-table dataset container with ground-truth match tuples.

A :class:`MultiTableDataset` is the unit of work for multi-table entity
matching: a set of source tables sharing a schema plus (optionally) the
ground-truth matched tuples used for evaluation (Definition 2 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import DataError, SchemaError
from .entity import Entity, EntityRef
from .table import Table

#: A matched tuple: a group of >= 2 entity refs that denote the same
#: real-world entity (Definition 2).
MatchTuple = frozenset[EntityRef]


def make_tuple(refs: Iterable[EntityRef]) -> MatchTuple:
    """Normalize an iterable of refs into a canonical matched tuple."""
    tup = frozenset(refs)
    if len(tup) < 2:
        raise DataError("a matched tuple must contain at least two entities")
    return tup


@dataclass
class MultiTableDataset:
    """A named collection of source tables plus ground truth.

    Attributes:
        name: dataset name (e.g. ``"music-20"``).
        tables: source tables, keyed by table name. All tables share a schema.
        ground_truth: set of matched tuples. Empty for unlabeled data.
        metadata: free-form provenance (generator parameters, scaling profile).
    """

    name: str
    tables: dict[str, Table]
    ground_truth: set[MatchTuple] = field(default_factory=set)
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tables:
            raise DataError("a dataset needs at least one table")
        schemas = {table.schema for table in self.tables.values()}
        if len(schemas) != 1:
            raise SchemaError(f"tables disagree on schema: {sorted(schemas)}")
        for key, table in self.tables.items():
            if key != table.name:
                raise DataError(f"table registered under {key!r} but named {table.name!r}")
        for tup in self.ground_truth:
            if len(tup) < 2:
                raise DataError("ground-truth tuples must have size >= 2")

    # ------------------------------------------------------------ properties
    @property
    def schema(self) -> tuple[str, ...]:
        """Shared schema of every source table."""
        return next(iter(self.tables.values())).schema

    @property
    def num_sources(self) -> int:
        """Number of source tables (the paper's ``S``)."""
        return len(self.tables)

    @property
    def num_entities(self) -> int:
        """Total number of records across all sources."""
        return sum(len(table) for table in self.tables.values())

    @property
    def num_truth_tuples(self) -> int:
        """Number of ground-truth matched tuples."""
        return len(self.ground_truth)

    @property
    def num_truth_pairs(self) -> int:
        """Number of ground-truth matched pairs implied by the tuples."""
        return sum(len(tup) * (len(tup) - 1) // 2 for tup in self.ground_truth)

    # -------------------------------------------------------------- accessors
    def table_list(self) -> list[Table]:
        """Tables in a deterministic (name-sorted) order."""
        return [self.tables[name] for name in sorted(self.tables)]

    def entity(self, ref: EntityRef) -> Entity:
        """Resolve a ref to its :class:`Entity`."""
        try:
            table = self.tables[ref.source]
        except KeyError as exc:
            raise DataError(f"unknown source table {ref.source!r}") from exc
        return table.entity(ref.index)

    def all_refs(self) -> list[EntityRef]:
        """All entity refs across all tables, sorted by (source, index)."""
        refs: list[EntityRef] = []
        for table in self.table_list():
            refs.extend(table.refs())
        return refs

    def iter_entities(self) -> Iterator[Entity]:
        """Iterate over every entity in every table."""
        for table in self.table_list():
            yield from table.entities()

    def truth_pairs(self) -> set[tuple[EntityRef, EntityRef]]:
        """Expand ground-truth tuples into the set of matched pairs.

        Pairs are canonically ordered so the set has no duplicates.
        """
        pairs: set[tuple[EntityRef, EntityRef]] = set()
        for tup in self.ground_truth:
            members = sorted(tup)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    pairs.add((a, b))
        return pairs

    def statistics(self) -> dict[str, object]:
        """Summary statistics matching Table III's columns."""
        return {
            "name": self.name,
            "sources": self.num_sources,
            "attributes": len(self.schema),
            "entities": self.num_entities,
            "tuples": self.num_truth_tuples,
            "pairs": self.num_truth_pairs,
        }

    # ----------------------------------------------------------- construction
    @staticmethod
    def from_tables(
        name: str,
        tables: Sequence[Table],
        ground_truth: Iterable[Iterable[EntityRef]] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> "MultiTableDataset":
        """Build a dataset from a list of tables and raw ground-truth groups."""
        truth = {make_tuple(group) for group in ground_truth}
        return MultiTableDataset(
            name=name,
            tables={table.name: table for table in tables},
            ground_truth=truth,
            metadata=dict(metadata or {}),
        )

    def subset(self, table_names: Sequence[str], name: str | None = None) -> "MultiTableDataset":
        """Restrict the dataset to a subset of its source tables.

        Ground-truth tuples are intersected with the remaining sources and
        kept only if at least two members survive.
        """
        missing = [n for n in table_names if n not in self.tables]
        if missing:
            raise DataError(f"unknown tables {missing}")
        keep = set(table_names)
        truth: set[MatchTuple] = set()
        for tup in self.ground_truth:
            remaining = frozenset(ref for ref in tup if ref.source in keep)
            if len(remaining) >= 2:
                truth.add(remaining)
        return MultiTableDataset(
            name=name or f"{self.name}-subset",
            tables={n: self.tables[n] for n in table_names},
            ground_truth=truth,
            metadata=dict(self.metadata),
        )
