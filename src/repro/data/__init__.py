"""Relational data substrate: entities, tables, datasets, IO, serialization."""

from .dataset import MatchTuple, MultiTableDataset, make_tuple
from .entity import Entity, EntityRef
from .io import load_dataset, read_table_csv, save_dataset, write_table_csv
from .serialization import serialize_entity, serialize_table
from .table import Table

__all__ = [
    "Entity",
    "EntityRef",
    "Table",
    "MultiTableDataset",
    "MatchTuple",
    "make_tuple",
    "serialize_entity",
    "serialize_table",
    "save_dataset",
    "load_dataset",
    "read_table_csv",
    "write_table_csv",
]
