"""Entity and entity-reference primitives.

An *entity* is one record of one source table: an ordered mapping from
attribute names to string values, plus a globally unique :class:`EntityRef`
identifying where it came from. The paper's symbol table (Table I) writes an
entity as ``e = {(attr_j, val_j) | 1 <= j <= p}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..exceptions import SchemaError


@dataclass(frozen=True, order=True)
class EntityRef:
    """Globally unique identifier of a record: (source table name, row index)."""

    source: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source}#{self.index}"


@dataclass(frozen=True)
class Entity:
    """A single record with its provenance.

    Attributes:
        ref: where the record lives (table name and row index).
        values: mapping from attribute name to (string) value. Missing values
            are represented as empty strings so serialization stays trivial.
    """

    ref: EntityRef
    values: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(self.values.keys())

    def value(self, attribute: str) -> str:
        """Return the value of ``attribute`` or raise :class:`SchemaError`."""
        try:
            return self.values[attribute]
        except KeyError as exc:
            raise SchemaError(f"entity {self.ref} has no attribute {attribute!r}") from exc

    def get(self, attribute: str, default: str = "") -> str:
        """Return the value of ``attribute`` or ``default`` if absent."""
        return self.values.get(attribute, default)

    def project(self, attributes: list[str] | tuple[str, ...]) -> "Entity":
        """Return a copy of the entity restricted to ``attributes``.

        Unknown attribute names raise :class:`SchemaError` — the enhanced
        representation module relies on this to catch configuration slips.
        """
        missing = [a for a in attributes if a not in self.values]
        if missing:
            raise SchemaError(f"entity {self.ref} is missing attributes {missing}")
        return Entity(self.ref, {a: self.values[a] for a in attributes})

    def items(self) -> Iterator[tuple[str, str]]:
        """Iterate over ``(attribute, value)`` pairs in schema order."""
        return iter(self.values.items())

    def __len__(self) -> int:
        return len(self.values)
