"""Entity serialization into text sequences.

The paper (Section II-B) serializes an entity by dropping attribute names and
concatenating attribute values::

    serialize(e) ::= val_1 val_2 ... val_p

The enhanced representation module re-serializes entities after attribute
selection, so serialization accepts an optional attribute subset.
"""

from __future__ import annotations

from typing import Sequence

from .entity import Entity
from .table import Table


def serialize_entity(
    entity: Entity,
    attributes: Sequence[str] | None = None,
    *,
    max_tokens: int | None = None,
    lowercase: bool = True,
) -> str:
    """Serialize one entity into a whitespace-joined text sequence.

    Args:
        entity: the record to serialize.
        attributes: if given, only these attributes (in this order) are kept —
            this is how Algorithm 1's selection feeds into the encoder.
        max_tokens: truncate the token sequence to this many tokens (the
            paper caps sequences at 64 tokens).
        lowercase: lowercase the text, mirroring typical EM preprocessing.

    Returns:
        A single string, possibly empty if every value is empty.
    """
    if attributes is None:
        values = [value for _, value in entity.items()]
    else:
        values = [entity.get(attribute, "") for attribute in attributes]
    text = " ".join(v.strip() for v in values if v and v.strip())
    if lowercase:
        text = text.lower()
    if max_tokens is not None:
        tokens = text.split()
        if len(tokens) > max_tokens:
            text = " ".join(tokens[:max_tokens])
    return text


def serialize_table(
    table: Table,
    attributes: Sequence[str] | None = None,
    *,
    max_tokens: int | None = None,
    lowercase: bool = True,
) -> list[str]:
    """Serialize every row of a table, preserving row order."""
    return [
        serialize_entity(entity, attributes, max_tokens=max_tokens, lowercase=lowercase)
        for entity in table.entities()
    ]
