"""Entity serialization into text sequences.

The paper (Section II-B) serializes an entity by dropping attribute names and
concatenating attribute values::

    serialize(e) ::= val_1 val_2 ... val_p

The enhanced representation module re-serializes entities after attribute
selection, so serialization accepts an optional attribute subset.

Serialization is columnar: :func:`serialize_table` resolves the attribute
subset to whole value columns once and :func:`serialize_columns` joins them
row-wise, instead of materializing an :class:`~repro.data.entity.Entity`
(one dict) per row. Output is byte-identical to the historical per-entity
walk (property-tested).
"""

from __future__ import annotations

from typing import Sequence

from .entity import Entity
from .table import Table


def serialize_entity(
    entity: Entity,
    attributes: Sequence[str] | None = None,
    *,
    max_tokens: int | None = None,
    lowercase: bool = True,
) -> str:
    """Serialize one entity into a whitespace-joined text sequence.

    Args:
        entity: the record to serialize.
        attributes: if given, only these attributes (in this order) are kept —
            this is how Algorithm 1's selection feeds into the encoder.
        max_tokens: truncate the token sequence to this many tokens (the
            paper caps sequences at 64 tokens).
        lowercase: lowercase the text, mirroring typical EM preprocessing.

    Returns:
        A single string, possibly empty if every value is empty.
    """
    if attributes is None:
        values = [value for _, value in entity.items()]
    else:
        values = [entity.get(attribute, "") for attribute in attributes]
    text = " ".join(v.strip() for v in values if v and v.strip())
    if lowercase:
        text = text.lower()
    if max_tokens is not None:
        tokens = text.split()
        if len(tokens) > max_tokens:
            text = " ".join(tokens[:max_tokens])
    return text


def serialize_columns(
    columns: Sequence[Sequence[str]],
    *,
    max_tokens: int | None = None,
    lowercase: bool = True,
) -> list[str]:
    """Serialize aligned value columns into one text per row.

    Args:
        columns: one value sequence per attribute, all the same length; row
            ``i`` serializes ``[column[i] for column in columns]``.
        max_tokens: truncate each row to this many whitespace tokens.
        lowercase: lowercase each serialized row.

    Returns:
        One string per row, byte-identical to calling
        :func:`serialize_entity` on the corresponding entity.
    """
    if not columns:
        return []
    stripped = [[value.strip() for value in column] for column in columns]
    texts = [" ".join(filter(None, row_values)) for row_values in zip(*stripped)]
    if lowercase:
        texts = [text.lower() for text in texts]
    if max_tokens is not None:
        for i, text in enumerate(texts):
            tokens = text.split()
            if len(tokens) > max_tokens:
                texts[i] = " ".join(tokens[:max_tokens])
    return texts


def resolve_columns(table: Table, attributes: Sequence[str] | None = None) -> list[list[str]]:
    """Value columns for an attribute subset, in subset order.

    Attributes absent from the schema resolve to all-empty columns, matching
    ``entity.get(attribute, "")`` in :func:`serialize_entity`.
    """
    if attributes is None:
        attributes = table.schema
    empty: list[str] | None = None
    columns: list[list[str]] = []
    for attribute in attributes:
        if attribute in table.schema:
            columns.append(table.column(attribute))
        else:
            if empty is None:
                empty = [""] * len(table)
            columns.append(empty)
    return columns


def serialize_table(
    table: Table,
    attributes: Sequence[str] | None = None,
    *,
    max_tokens: int | None = None,
    lowercase: bool = True,
) -> list[str]:
    """Serialize every row of a table, preserving row order.

    Column-wise: attribute columns are gathered once and joined row-wise,
    skipping the per-row :class:`~repro.data.entity.Entity` dict walk.
    """
    if len(table) == 0:
        return []
    return serialize_columns(
        resolve_columns(table, attributes), max_tokens=max_tokens, lowercase=lowercase
    )
