"""Relational table abstraction used throughout the reproduction.

A :class:`Table` is a named, schema-typed collection of string records. It is
intentionally simple — the library never needs SQL semantics, only column
access, sampling, and column shuffling (for Algorithm 1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import DataError, SchemaError
from .entity import Entity, EntityRef


class Table:
    """A single source table with a fixed schema.

    Args:
        name: table (source) name; becomes the ``source`` of every
            :class:`EntityRef` in the table.
        schema: ordered attribute names shared by every row.
        rows: sequence of value sequences (or mappings) matching the schema.

    Raises:
        DataError: if a row's arity does not match the schema.
    """

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        rows: Iterable[Sequence[str] | Mapping[str, str]] = (),
    ) -> None:
        if not name:
            raise DataError("table name must be non-empty")
        if not schema:
            raise SchemaError("table schema must contain at least one attribute")
        if len(set(schema)) != len(schema):
            raise SchemaError(f"duplicate attribute names in schema {list(schema)}")
        self.name = name
        self.schema: tuple[str, ...] = tuple(schema)
        self._rows: list[tuple[str, ...]] = []
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------ rows
    def append(self, row: Sequence[str] | Mapping[str, str]) -> EntityRef:
        """Append a row and return the :class:`EntityRef` assigned to it."""
        if isinstance(row, Mapping):
            missing = [a for a in self.schema if a not in row]
            if missing:
                raise DataError(f"row missing attributes {missing} for table {self.name!r}")
            values = tuple(str(row[a]) for a in self.schema)
        else:
            if len(row) != len(self.schema):
                raise DataError(
                    f"row arity {len(row)} does not match schema arity "
                    f"{len(self.schema)} for table {self.name!r}"
                )
            values = tuple(str(v) for v in row)
        self._rows.append(values)
        return EntityRef(self.name, len(self._rows) - 1)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities())

    def row(self, index: int) -> tuple[str, ...]:
        """Return the raw value tuple at ``index``."""
        try:
            return self._rows[index]
        except IndexError as exc:
            raise DataError(f"row index {index} out of range for table {self.name!r}") from exc

    def entity(self, index: int) -> Entity:
        """Return the :class:`Entity` at ``index``."""
        values = self.row(index)
        return Entity(EntityRef(self.name, index), dict(zip(self.schema, values)))

    def entities(self) -> list[Entity]:
        """Return all rows as :class:`Entity` objects."""
        return [self.entity(i) for i in range(len(self._rows))]

    def refs(self) -> list[EntityRef]:
        """Return the refs of all rows in order."""
        return [EntityRef(self.name, i) for i in range(len(self._rows))]

    # --------------------------------------------------------------- columns
    def column(self, attribute: str) -> list[str]:
        """Return all values of one attribute, in row order."""
        try:
            pos = self.schema.index(attribute)
        except ValueError as exc:
            raise SchemaError(f"table {self.name!r} has no attribute {attribute!r}") from exc
        return [row[pos] for row in self._rows]

    def with_column_shuffled(self, attribute: str, rng: np.random.Generator) -> "Table":
        """Return a copy of the table with one column's values permuted.

        This is the core operation of Algorithm 1 (automated attribute
        selection): shuffling a *significant* attribute should move the
        embeddings much more than shuffling an insignificant one.
        """
        pos = self.schema.index(attribute) if attribute in self.schema else -1
        if pos < 0:
            raise SchemaError(f"table {self.name!r} has no attribute {attribute!r}")
        permutation = rng.permutation(len(self._rows))
        shuffled_values = [self._rows[j][pos] for j in permutation]
        new_rows = [
            tuple(shuffled_values[i] if k == pos else value for k, value in enumerate(row))
            for i, row in enumerate(self._rows)
        ]
        clone = Table(self.name, self.schema)
        clone._rows = new_rows
        return clone

    def project(self, attributes: Sequence[str]) -> "Table":
        """Return a copy restricted to ``attributes`` (keeping row order)."""
        missing = [a for a in attributes if a not in self.schema]
        if missing:
            raise SchemaError(f"table {self.name!r} has no attributes {missing}")
        positions = [self.schema.index(a) for a in attributes]
        clone = Table(self.name, tuple(attributes))
        clone._rows = [tuple(row[p] for p in positions) for row in self._rows]
        return clone

    def sample(self, ratio: float, rng: np.random.Generator) -> "Table":
        """Return a random sample of the rows (at least one row)."""
        if not 0 < ratio <= 1:
            raise DataError("sample ratio must be in (0, 1]")
        count = max(1, int(round(len(self._rows) * ratio)))
        indices = rng.choice(len(self._rows), size=min(count, len(self._rows)), replace=False)
        clone = Table(self.name, self.schema)
        clone._rows = [self._rows[int(i)] for i in sorted(indices)]
        return clone

    # --------------------------------------------------------------- helpers
    @staticmethod
    def concat(tables: Sequence["Table"], name: str = "concat") -> "Table":
        """Concatenate tables sharing a schema into a single table.

        Used by Algorithm 1, which scores attributes on the union of all
        source tables.
        """
        if not tables:
            raise DataError("cannot concatenate zero tables")
        schema = tables[0].schema
        for table in tables[1:]:
            if table.schema != schema:
                raise SchemaError(
                    f"cannot concatenate tables with schemas {schema} and {table.schema}"
                )
        clone = Table(name, schema)
        for table in tables:
            clone._rows.extend(table._rows)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(name={self.name!r}, rows={len(self)}, schema={list(self.schema)})"
