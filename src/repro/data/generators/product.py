"""Product-listing dataset generator (Shopee / price-comparison shape).

Two shapes are produced:

* :class:`ProductGenerator` — a multi-attribute e-commerce catalogue (title,
  brand, color, storage, price), used by the examples and the quickstart.
* :class:`ShopeeGenerator` — the paper's Shopee profile: **20 sources, a
  single ``title`` attribute**, and deliberately confusable listings (many
  distinct products share most of their tokens), which is why every method's
  scores collapse on this dataset in Table IV.
"""

from __future__ import annotations

import numpy as np

from .base import SyntheticDatasetGenerator
from .vocabulary import (
    BRANDS,
    COLORS,
    MARKETING_TOKENS,
    PRODUCT_MODIFIERS,
    PRODUCT_NOUNS,
    SCREEN_SIZES,
    STORAGE_SIZES,
)


class ProductGenerator(SyntheticDatasetGenerator):
    """Multi-attribute product catalogue spread over several marketplaces."""

    domain = "product"

    @property
    def schema(self) -> tuple[str, ...]:
        return ("title", "brand", "color", "storage", "price")

    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        brand = str(rng.choice(BRANDS))
        noun = str(rng.choice(PRODUCT_NOUNS))
        modifier = str(rng.choice(PRODUCT_MODIFIERS))
        generation = int(rng.integers(1, 15))
        storage = str(rng.choice(STORAGE_SIZES))
        screen = str(rng.choice(SCREEN_SIZES))
        color = str(rng.choice(COLORS))
        title = f"{brand} {noun} {generation} {modifier} {screen} {storage}"
        price = float(rng.uniform(40, 1500))
        return {
            "title": title,
            "brand": brand,
            "color": color,
            "storage": storage,
            "price": f"{price:.2f}",
        }

    def source_specific_values(
        self, clean: dict[str, str], source_index: int, rng: np.random.Generator
    ) -> dict[str, str]:
        # Marketplaces price the same product differently — price is noise.
        values = dict(clean)
        base = float(clean["price"])
        values["price"] = f"{base * float(rng.uniform(0.9, 1.1)):.2f}"
        return values


class ShopeeGenerator(SyntheticDatasetGenerator):
    """Single-attribute, highly confusable product titles across 20 sources."""

    domain = "shopee"

    #: Small vocabulary reused across *different* products so that distinct
    #: entities share most tokens — the property that makes Shopee hard.
    _CONFUSABLE_PARTS = (
        ("senter", "torch", "flashlight", "lamp", "headlamp"),
        ("mini", "xpe", "cob", "led", "q5", "u3", "t6"),
        ("zoom", "usb", "cas", "charger", "rechargeable", "waterproof"),
        ("police", "swat", "tactical", "outdoor", "camping", "emergency"),
    )

    @property
    def schema(self) -> tuple[str, ...]:
        return ("title",)

    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        parts: list[str] = []
        for group in self._CONFUSABLE_PARTS:
            take = int(rng.integers(1, 3))
            parts.extend(str(w) for w in rng.choice(group, size=min(take, len(group)), replace=False))
        if rng.random() < 0.5:
            parts.append(str(rng.choice(MARKETING_TOKENS)))
        # A product code is the only reliably discriminative token; it is
        # short and easily corrupted, which keeps the dataset hard.
        parts.append(f"v{int(rng.integers(1, 99))}")
        return {"title": " ".join(parts)}
