"""Shared machinery for synthetic multi-source dataset generators.

Each generator produces a pool of *clean* real-world entities, then scatters
corrupted variants of each entity across a configurable number of source
tables. Entities present in two or more sources form the ground-truth matched
tuples (Definition 2); singleton appearances act as distractors, exactly like
the unmatched records in the paper's benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import ConfigurationError
from ..dataset import MultiTableDataset
from ..entity import EntityRef
from ..table import Table
from .corruption import CorruptionConfig, ValueCorruptor


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs shared by every domain generator.

    Attributes:
        num_sources: number of source tables S.
        num_entities: number of distinct real-world entities in the pool.
        duplicate_rate: probability that an entity appears in any given
            source (controls tuple sizes and the matched/unmatched mix).
        min_sources_per_entity: lower bound on appearances for entities that
            are chosen to be duplicated.
        corruption: corruption probabilities applied to non-canonical copies.
        seed: RNG seed; generation is fully deterministic given the config.
    """

    num_sources: int = 4
    num_entities: int = 500
    duplicate_rate: float = 0.6
    min_sources_per_entity: int = 2
    corruption: CorruptionConfig = field(default_factory=CorruptionConfig)
    seed: int = 0

    def validate(self) -> None:
        if self.num_sources < 2:
            raise ConfigurationError("need at least two source tables")
        if self.num_entities < 1:
            raise ConfigurationError("need at least one entity")
        if not 0 < self.duplicate_rate <= 1:
            raise ConfigurationError("duplicate_rate must be in (0, 1]")
        if self.min_sources_per_entity < 2:
            raise ConfigurationError("min_sources_per_entity must be >= 2")


class SyntheticDatasetGenerator(ABC):
    """Base class: sample clean entities, scatter corrupted copies, emit truth."""

    #: dataset-level name prefix, e.g. ``"music"``.
    domain: str = "generic"
    #: attributes whose values are never corrupted (e.g. numeric ids that the
    #: paper's attribute-selection should learn to ignore anyway).
    protected_attributes: frozenset[str] = frozenset()

    def __init__(self, config: GeneratorConfig) -> None:
        config.validate()
        self.config = config

    # ------------------------------------------------------------- interface
    @property
    @abstractmethod
    def schema(self) -> tuple[str, ...]:
        """Attribute names of every generated table."""

    @abstractmethod
    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        """Produce the canonical (uncorrupted) attribute values of entity ``index``."""

    def source_specific_values(
        self, clean: dict[str, str], source_index: int, rng: np.random.Generator
    ) -> dict[str, str]:
        """Hook for per-source systematic differences (e.g. source-specific ids)."""
        return dict(clean)

    # ------------------------------------------------------------ generation
    def generate(self, name: str | None = None) -> MultiTableDataset:
        """Generate the dataset: tables, ground truth, and provenance metadata."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        corruptor = ValueCorruptor(cfg.corruption, seed=cfg.seed + 1)
        source_names = [f"source_{chr(ord('A') + i)}" if cfg.num_sources <= 26 else f"source_{i:02d}"
                        for i in range(cfg.num_sources)]
        tables = {s: Table(s, self.schema) for s in source_names}
        ground_truth: list[frozenset[EntityRef]] = []

        for entity_index in range(cfg.num_entities):
            clean = self.sample_clean_entity(rng, entity_index)
            if rng.random() < cfg.duplicate_rate:
                count = int(rng.integers(cfg.min_sources_per_entity, cfg.num_sources + 1))
            else:
                count = 1
            chosen = rng.choice(cfg.num_sources, size=min(count, cfg.num_sources), replace=False)
            refs: list[EntityRef] = []
            for order, source_position in enumerate(sorted(int(c) for c in chosen)):
                source = source_names[source_position]
                values = self.source_specific_values(clean, source_position, rng)
                if order > 0:  # keep the first copy clean-ish, corrupt the rest
                    values = corruptor.corrupt_record(values, set(self.protected_attributes))
                row = {attr: values.get(attr, "") for attr in self.schema}
                refs.append(tables[source].append(row))
            if len(refs) >= 2:
                ground_truth.append(frozenset(refs))

        dataset = MultiTableDataset.from_tables(
            name or f"{self.domain}-synthetic",
            [tables[s] for s in source_names],
            ground_truth,
            metadata={
                "domain": self.domain,
                "generator": type(self).__name__,
                "num_sources": cfg.num_sources,
                "num_entities_pool": cfg.num_entities,
                "duplicate_rate": cfg.duplicate_rate,
                "seed": cfg.seed,
            },
        )
        return dataset
