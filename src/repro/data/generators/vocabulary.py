"""Deterministic vocabularies used by the synthetic dataset generators.

The public benchmarks (Geo, Music, Person, Shopee) cannot be downloaded in
this environment, so the generators synthesize datasets with the same *shape*:
the vocabularies below give each domain realistic-looking values while staying
fully deterministic and dependency-free.
"""

from __future__ import annotations

BRANDS = [
    "apple", "samsung", "xiaomi", "huawei", "sony", "lg", "nokia", "oppo",
    "vivo", "lenovo", "asus", "acer", "dell", "hp", "canon", "nikon",
    "bosch", "philips", "panasonic", "logitech", "anker", "jbl", "garmin",
    "fitbit", "dyson", "braun", "siemens", "kenwood", "tefal", "remington",
]

PRODUCT_NOUNS = [
    "phone", "smartphone", "tablet", "laptop", "notebook", "camera", "lens",
    "headphones", "earbuds", "speaker", "charger", "cable", "adapter",
    "keyboard", "mouse", "monitor", "printer", "router", "powerbank",
    "watch", "band", "drone", "projector", "microphone", "webcam",
    "torch", "flashlight", "kettle", "blender", "toaster", "vacuum",
]

PRODUCT_MODIFIERS = [
    "pro", "max", "mini", "plus", "ultra", "lite", "air", "se", "xl",
    "prime", "neo", "edge", "fold", "flip", "classic", "sport", "active",
]

COLORS = [
    "black", "white", "silver", "gold", "gray", "blue", "red", "green",
    "pink", "purple", "yellow", "orange", "rose", "bronze", "graphite",
]

COLOR_SYNONYMS = {
    "black": ["jet black", "midnight", "onyx"],
    "white": ["pearl white", "ivory", "snow"],
    "silver": ["sv", "metallic silver", "platinum"],
    "gold": ["champagne", "golden"],
    "gray": ["grey", "space gray", "graphite gray"],
    "blue": ["navy", "ocean blue", "azure"],
    "red": ["crimson", "scarlet"],
    "green": ["emerald", "olive"],
    "pink": ["rose pink", "blush"],
    "purple": ["violet", "lavender"],
}

STORAGE_SIZES = ["16gb", "32gb", "64gb", "128gb", "256gb", "512gb", "1tb"]
SCREEN_SIZES = ["4.7", "5.0", "5.5", "6.1", "6.5", "6.7", "7.0", "10.1", "12.9", "13.3", "14", "15.6"]

MARKETING_TOKENS = [
    "unlocked", "sim free", "dual sim", "4g", "5g", "wifi", "bluetooth",
    "original", "official", "warranty", "new", "sealed", "free shipping",
    "fast charging", "waterproof", "limited edition", "2023 model",
]

FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
]

SUBURBS = [
    "springfield", "riverside", "fairview", "greenville", "bristol",
    "clinton", "georgetown", "salem", "madison", "oakland", "ashland",
    "burlington", "milton", "newport", "arlington", "dover", "hudson",
    "kingston", "oxford", "richmond", "auburn", "chester", "dayton",
    "florence", "glendale", "jackson", "lebanon", "manchester", "troy",
]

CITIES = [
    "zurich", "geneva", "basel", "bern", "lausanne", "lucerne", "lugano",
    "vienna", "graz", "linz", "salzburg", "innsbruck", "munich", "berlin",
    "hamburg", "cologne", "frankfurt", "stuttgart", "dusseldorf", "leipzig",
    "prague", "brno", "bratislava", "budapest", "ljubljana", "zagreb",
    "milan", "turin", "venice", "florence", "naples", "rome", "bologna",
    "lyon", "marseille", "toulouse", "bordeaux", "nantes", "strasbourg",
    "porto", "lisbon", "seville", "valencia", "bilbao", "granada",
    "krakow", "warsaw", "gdansk", "wroclaw", "poznan", "szczecin",
    "oslo", "bergen", "stockholm", "gothenburg", "malmo", "uppsala",
    "helsinki", "tampere", "turku", "copenhagen", "aarhus", "odense",
    "rotterdam", "utrecht", "eindhoven", "antwerp", "ghent", "bruges",
    "dresden", "nuremberg", "hanover", "bremen", "kiel", "mainz",
]

GEO_FEATURE_TYPES = [
    "lake", "mountain", "peak", "river", "valley", "glacier", "pass",
    "forest", "ridge", "spring", "waterfall", "reservoir", "hill", "bay",
    "gorge", "plateau", "marsh", "meadow", "cliff", "cave", "island",
    "lagoon", "creek", "summit", "basin", "canyon", "delta", "dune",
]

GEO_QUALIFIERS = [
    "upper", "lower", "north", "south", "east", "west", "great", "little",
    "old", "new", "inner", "outer", "high", "deep", "far", "middle",
    "saint", "twin", "hidden", "silent", "black", "white", "red", "green",
]

ARTIST_FIRST = [
    "tim", "emma", "carlos", "nina", "oscar", "lena", "marco", "julia",
    "peter", "sofia", "diego", "ella", "victor", "amara", "felix", "iris",
    "hugo", "clara", "leon", "maya", "adam", "nora", "simon", "vera",
    "bruno", "alice", "rafael", "ines", "janek", "freya", "tomas", "zoe",
    "miles", "dahlia", "ezra", "lucia", "odin", "petra", "silas", "wren",
    "caspian", "marta", "nils", "selene", "arlo", "bianca", "dmitri", "yara",
]

ARTIST_LAST = [
    "o'brien", "stone", "rivera", "holt", "lang", "mercer", "vance",
    "kessler", "boyd", "fontaine", "harper", "quinn", "sawyer", "whitman",
    "ellison", "draper", "calloway", "bennett", "mcrae", "delgado",
    "sinclair", "thorne", "ashford", "winslow",
    "aldana", "birk", "castellan", "dragovic", "eversole", "farrow",
    "galindo", "hawthorne", "ibarra", "jansen", "kovacs", "lindqvist",
    "moravec", "norrgard", "okafor", "petridis", "quintero", "rasmussen",
    "sorensen", "takacs", "urbanek", "valtonen", "wexler", "zielinski",
]

ALBUM_WORDS = [
    "chameleon", "midnight", "echoes", "horizon", "gravity", "mirrors",
    "wildfire", "monsoon", "aurora", "paradox", "satellite", "harvest",
    "voyager", "labyrinth", "ember", "cascade", "prism", "solstice",
    "undertow", "afterglow", "momentum", "harbor", "lanterns", "meridian",
    "penumbra", "tessellate", "driftwood", "borealis", "quicksand", "zephyr",
    "marrow", "palisade", "vellum", "sonder", "tidewater", "firmament",
    "atlas", "reverie", "monolith", "saffron", "parallax", "wintermoon",
]

SONG_WORDS = [
    "river", "shadow", "golden", "summer", "winter", "falling", "rising",
    "electric", "velvet", "broken", "silver", "neon", "crystal", "hollow",
    "burning", "frozen", "wandering", "distant", "silent", "restless",
    "crimson", "fading", "endless", "gentle", "hidden", "lonely",
    "paper", "hollowed", "glass", "thunder", "ashen", "radiant", "midnight",
    "shallow", "granite", "copper", "lunar", "feral", "weightless", "static",
    "emerald", "hollowing", "nocturne", "pale", "roaming", "sapphire",
    "trembling", "vagabond", "wayward", "yonder", "brittle", "cobalt",
]

LANGUAGES = ["en", "de", "fr", "es", "it", "pt", "nl", "sv"]

STREET_SUFFIXES = ["street", "road", "avenue", "lane", "drive", "court", "place", "way"]
