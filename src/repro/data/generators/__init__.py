"""Synthetic multi-source dataset generators mirroring the paper's benchmarks."""

from .base import GeneratorConfig, SyntheticDatasetGenerator
from .corruption import CorruptionConfig, ValueCorruptor
from .geo import GeoGenerator
from .music import MusicGenerator
from .person import PersonGenerator
from .product import ProductGenerator, ShopeeGenerator
from .registry import (
    DATASET_NAMES,
    PROFILES,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load_benchmark,
    paper_statistics,
)

__all__ = [
    "GeneratorConfig",
    "SyntheticDatasetGenerator",
    "CorruptionConfig",
    "ValueCorruptor",
    "GeoGenerator",
    "MusicGenerator",
    "PersonGenerator",
    "ProductGenerator",
    "ShopeeGenerator",
    "DATASET_NAMES",
    "PROFILES",
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "load_benchmark",
    "paper_statistics",
]
