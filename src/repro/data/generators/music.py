"""Music-like dataset generator.

The paper's Music-20/200/2000 datasets have 5 sources and 8 attributes
(id, number, title, length, artist, album, year, language) of which only
title/artist/album carry matching signal (Table VII). The generator keeps
that property: ``id`` and ``number`` are source-specific noise, ``length``,
``year`` and ``language`` are low-information, and the text attributes are
the discriminative ones.
"""

from __future__ import annotations

import numpy as np

from .base import SyntheticDatasetGenerator
from .vocabulary import ALBUM_WORDS, ARTIST_FIRST, ARTIST_LAST, LANGUAGES, SONG_WORDS


class MusicGenerator(SyntheticDatasetGenerator):
    """Synthetic multi-source music-track catalogue (Music-20/200/2000 shape).

    The non-textual metadata columns deliberately disagree across catalogues
    (identifiers are source-specific, track lengths are formatted differently,
    years drift by ±1, language codes use different conventions). This mirrors
    real aggregated catalogues and is what makes the paper's enhanced entity
    representation (attribute selection) matter: serializing those columns
    into the embedding *hurts* matching, and Algorithm 1 learns to drop them
    (Table VII).
    """

    domain = "music"
    protected_attributes = frozenset({"id", "number", "length", "year", "language"})

    _LANGUAGE_FORMS = {
        "en": ("en", "english", "eng"),
        "de": ("de", "german", "ger"),
        "fr": ("fr", "french", "fra"),
        "es": ("es", "spanish", "spa"),
        "it": ("it", "italian", "ita"),
        "pt": ("pt", "portuguese", "por"),
        "nl": ("nl", "dutch", "nld"),
        "sv": ("sv", "swedish", "swe"),
    }

    @property
    def schema(self) -> tuple[str, ...]:
        return ("id", "number", "title", "length", "artist", "album", "year", "language")

    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        title_words = rng.choice(SONG_WORDS, size=int(rng.integers(2, 4)), replace=False)
        artist = f"{rng.choice(ARTIST_FIRST)} {rng.choice(ARTIST_LAST)}"
        album = " ".join(rng.choice(ALBUM_WORDS, size=int(rng.integers(1, 3)), replace=False))
        minutes = int(rng.integers(2, 7))
        seconds = int(rng.integers(0, 60))
        return {
            "id": f"WoM{int(rng.integers(10_000_000, 99_999_999))}",
            "number": str(int(rng.integers(1, 20))),
            "title": " ".join(str(w) for w in title_words),
            "length": f"{minutes}:{seconds:02d}",
            "artist": artist,
            "album": album,
            "year": str(int(rng.integers(1975, 2023))),
            "language": str(rng.choice(LANGUAGES)),
        }

    def source_specific_values(
        self, clean: dict[str, str], source_index: int, rng: np.random.Generator
    ) -> dict[str, str]:
        # Every catalogue assigns its own opaque identifier and track number,
        # formats the track length its own way, disagrees on the year by up to
        # one, and encodes the language differently. These columns therefore
        # carry zero (or negative) cross-source matching signal — the reason
        # the EER module drops them (Table VII) and the w/o-EER ablation loses
        # accuracy (Table IV).
        values = dict(clean)
        values["id"] = f"S{source_index}-{int(rng.integers(10_000_000, 99_999_999))}"
        values["number"] = str(int(rng.integers(1, 20)))
        minutes, seconds = clean["length"].split(":")
        length_format = int(rng.integers(0, 3))
        if length_format == 1:
            values["length"] = f"{int(minutes) * 60 + int(seconds)}s"
        elif length_format == 2:
            values["length"] = f"{minutes}m{seconds}s"
        year = int(clean["year"]) + int(rng.integers(-1, 2))
        values["year"] = f"'{year % 100:02d}" if rng.random() < 0.3 else str(year)
        forms = self._LANGUAGE_FORMS.get(clean["language"], (clean["language"],))
        values["language"] = str(forms[int(rng.integers(0, len(forms)))])
        # Aggregated catalogues are sparsely populated: secondary metadata is
        # frequently missing, which removes most of its cross-source signal.
        for sparse_attribute in ("length", "year", "language"):
            if rng.random() < 0.45:
                values[sparse_attribute] = ""
        return values
