"""Registry of the paper's six benchmark profiles at several scales.

The paper evaluates on Geo, Music-20, Music-200, Music-2000, Person, and
Shopee (Table III). The real datasets cannot be downloaded here, so the
registry maps each name onto a synthetic generator with the same number of
sources, schema shape, and duplicate structure, at three scales:

* ``paper``  — entity pools sized like Table III (Music-2000 / Person remain
  large; only use this profile on a beefy machine),
* ``bench``  — scaled so the full benchmark harness finishes in minutes,
* ``tiny``   — unit-test scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...exceptions import ConfigurationError
from ..dataset import MultiTableDataset
from .base import GeneratorConfig, SyntheticDatasetGenerator
from .corruption import CorruptionConfig
from .geo import GeoGenerator
from .music import MusicGenerator
from .person import PersonGenerator
from .product import ProductGenerator, ShopeeGenerator

DATASET_NAMES = ("geo", "music-20", "music-200", "music-2000", "person", "shopee")
PROFILES = ("tiny", "bench", "paper")


@dataclass(frozen=True)
class DatasetSpec:
    """How to build one named benchmark at one scale."""

    name: str
    generator_cls: type[SyntheticDatasetGenerator]
    num_sources: int
    entities_by_profile: dict[str, int]
    duplicate_rate: float = 0.6
    corruption: CorruptionConfig = CorruptionConfig()

    def build(self, profile: str, seed: int = 0) -> MultiTableDataset:
        if profile not in self.entities_by_profile:
            raise ConfigurationError(
                f"profile {profile!r} not available for {self.name!r}; "
                f"choose from {sorted(self.entities_by_profile)}"
            )
        config = GeneratorConfig(
            num_sources=self.num_sources,
            num_entities=self.entities_by_profile[profile],
            duplicate_rate=self.duplicate_rate,
            corruption=self.corruption,
            seed=seed,
        )
        generator = self.generator_cls(config)
        dataset = generator.generate(self.name)
        dataset.metadata["profile"] = profile
        return dataset


_SPECS: dict[str, DatasetSpec] = {
    "geo": DatasetSpec(
        name="geo",
        generator_cls=GeoGenerator,
        num_sources=4,
        entities_by_profile={"tiny": 60, "bench": 820, "paper": 820},
        duplicate_rate=0.65,
        corruption=CorruptionConfig(add_token_prob=0.05, synonym_prob=0.0, drop_token_prob=0.1),
    ),
    "music-20": DatasetSpec(
        name="music-20",
        generator_cls=MusicGenerator,
        num_sources=5,
        entities_by_profile={"tiny": 80, "bench": 1200, "paper": 5000},
        duplicate_rate=0.7,
    ),
    "music-200": DatasetSpec(
        name="music-200",
        generator_cls=MusicGenerator,
        num_sources=5,
        entities_by_profile={"tiny": 120, "bench": 4000, "paper": 50_000},
        duplicate_rate=0.7,
    ),
    "music-2000": DatasetSpec(
        name="music-2000",
        generator_cls=MusicGenerator,
        num_sources=5,
        entities_by_profile={"tiny": 160, "bench": 8000, "paper": 500_000},
        duplicate_rate=0.7,
    ),
    "person": DatasetSpec(
        name="person",
        generator_cls=PersonGenerator,
        num_sources=5,
        entities_by_profile={"tiny": 150, "bench": 6000, "paper": 500_000},
        duplicate_rate=0.6,
        corruption=CorruptionConfig(typo_prob=0.25, add_token_prob=0.05, synonym_prob=0.0),
    ),
    "shopee": DatasetSpec(
        name="shopee",
        generator_cls=ShopeeGenerator,
        num_sources=20,
        entities_by_profile={"tiny": 100, "bench": 1500, "paper": 10_962},
        duplicate_rate=0.55,
        corruption=CorruptionConfig(typo_prob=0.2, add_token_prob=0.35, reorder_prob=0.3),
    ),
}

#: Extra, non-paper dataset used by examples and docs.
_EXTRA_SPECS: dict[str, DatasetSpec] = {
    "product": DatasetSpec(
        name="product",
        generator_cls=ProductGenerator,
        num_sources=4,
        entities_by_profile={"tiny": 80, "bench": 1000, "paper": 5000},
        duplicate_rate=0.7,
    ),
}


def available_datasets(include_extra: bool = False) -> tuple[str, ...]:
    """Names of the registered benchmark datasets."""
    names = list(DATASET_NAMES)
    if include_extra:
        names.extend(sorted(_EXTRA_SPECS))
    return tuple(names)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the spec for a registered dataset name."""
    spec = _SPECS.get(name) or _EXTRA_SPECS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {available_datasets(include_extra=True)}"
        )
    return spec


def load_benchmark(name: str, profile: str = "bench", seed: int = 0) -> MultiTableDataset:
    """Build one of the registered benchmark datasets.

    Args:
        name: one of :data:`DATASET_NAMES` (or ``"product"``).
        profile: ``"tiny"``, ``"bench"`` or ``"paper"``.
        seed: generation seed — the same (name, profile, seed) triple always
            produces the identical dataset.
    """
    return dataset_spec(name).build(profile, seed=seed)


def paper_statistics() -> list[dict[str, object]]:
    """Table III as published (for side-by-side comparison in reports)."""
    return [
        {"name": "Geo", "domain": "geography", "sources": 4, "attributes": 3,
         "entities": 3054, "tuples": 820, "pairs": 4391},
        {"name": "Music-20", "domain": "music", "sources": 5, "attributes": 5,
         "entities": 19_375, "tuples": 5000, "pairs": 16_250},
        {"name": "Music-200", "domain": "music", "sources": 5, "attributes": 5,
         "entities": 193_750, "tuples": 50_000, "pairs": 162_500},
        {"name": "Music-2000", "domain": "music", "sources": 5, "attributes": 5,
         "entities": 1_937_500, "tuples": 500_000, "pairs": 1_625_000},
        {"name": "Person", "domain": "person", "sources": 5, "attributes": 4,
         "entities": 5_000_000, "tuples": 500_000, "pairs": 3_331_384},
        {"name": "Shopee", "domain": "product", "sources": 20, "attributes": 1,
         "entities": 32_563, "tuples": 10_962, "pairs": 54_488},
    ]
