"""Person-like dataset generator.

The paper's Person dataset (5M entities, 5 sources, 4 attributes: givenname,
surname, suburb, postcode) is a record-linkage style benchmark where every
attribute is short and somewhat discriminative — Table VII shows Algorithm 1
keeps all four attributes. The generator reproduces that shape with name
pools large enough to create genuine ambiguity (different people sharing a
name) at bench scale.
"""

from __future__ import annotations

import numpy as np

from .base import SyntheticDatasetGenerator
from .vocabulary import FIRST_NAMES, LAST_NAMES, SUBURBS


class PersonGenerator(SyntheticDatasetGenerator):
    """Synthetic multi-source person registry (Person dataset shape)."""

    domain = "person"

    @property
    def schema(self) -> tuple[str, ...]:
        return ("givenname", "surname", "suburb", "postcode")

    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        return {
            "givenname": str(rng.choice(FIRST_NAMES)),
            "surname": str(rng.choice(LAST_NAMES)),
            "suburb": str(rng.choice(SUBURBS)),
            "postcode": f"{int(rng.integers(1000, 9999))}",
        }
