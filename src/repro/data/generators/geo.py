"""Geo-like dataset generator.

The paper's *Geo* dataset has 4 sources, 3 attributes (name, longitude,
latitude) and ~3k geographic entities. The generator mirrors that shape:
named geographic features with coordinates, where only ``name`` is
discriminative text and the coordinates are near-duplicates across sources
with small numeric jitter.
"""

from __future__ import annotations

import numpy as np

from .base import SyntheticDatasetGenerator
from .vocabulary import CITIES, GEO_FEATURE_TYPES, GEO_QUALIFIERS


class GeoGenerator(SyntheticDatasetGenerator):
    """Synthetic multi-source gazetteer matching the Geo dataset's shape."""

    domain = "geo"

    @property
    def schema(self) -> tuple[str, ...]:
        return ("name", "longitude", "latitude")

    def sample_clean_entity(self, rng: np.random.Generator, index: int) -> dict[str, str]:
        city = str(rng.choice(CITIES))
        feature = str(rng.choice(GEO_FEATURE_TYPES))
        qualifiers = rng.choice(GEO_QUALIFIERS, size=2, replace=False)
        name = f"{qualifiers[0]} {qualifiers[1]} {city} {feature}"
        longitude = float(rng.uniform(5.0, 17.0))
        latitude = float(rng.uniform(44.0, 49.0))
        return {
            "name": name,
            "longitude": f"{longitude:.5f}",
            "latitude": f"{latitude:.5f}",
        }

    def source_specific_values(
        self, clean: dict[str, str], source_index: int, rng: np.random.Generator
    ) -> dict[str, str]:
        # Different gazetteers report coordinates with slightly different
        # precision and a small jitter — realistic, and it keeps the numeric
        # columns uninformative for matching (Algorithm 1 should discard them).
        values = dict(clean)
        jitter = rng.normal(0.0, 0.002, size=2)
        precision = int(rng.integers(3, 6))
        values["longitude"] = f"{float(clean['longitude']) + jitter[0]:.{precision}f}"
        values["latitude"] = f"{float(clean['latitude']) + jitter[1]:.{precision}f}"
        return values
