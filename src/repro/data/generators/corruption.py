"""Value corruption model for synthetic multi-source datasets.

Every source table sees a *variant* of the clean record: the same real-world
entity is described with typos, dropped/added tokens, abbreviations, synonyms,
reordered tokens, or reformatted numbers. This is what makes multi-table EM
non-trivial and is the behaviour the paper's benchmarks exhibit (Figure 1:
four differently-phrased iPhone listings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocabulary import COLOR_SYNONYMS, MARKETING_TOKENS

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class CorruptionConfig:
    """Probabilities of each corruption applied independently per value.

    The defaults produce sources that are clearly the same entity to a human
    but differ in surface form — the regime where embedding-based matching
    shines and token-equality matching fails.
    """

    typo_prob: float = 0.15
    drop_token_prob: float = 0.12
    add_token_prob: float = 0.12
    reorder_prob: float = 0.15
    abbreviate_prob: float = 0.1
    synonym_prob: float = 0.3
    case_prob: float = 0.1
    numeric_format_prob: float = 0.3
    missing_prob: float = 0.02


class ValueCorruptor:
    """Applies randomized, seed-deterministic corruptions to attribute values."""

    def __init__(self, config: CorruptionConfig | None = None, seed: int = 0) -> None:
        self.config = config or CorruptionConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------- primitives
    def _typo(self, word: str) -> str:
        if len(word) < 3:
            return word
        rng = self._rng
        op = rng.integers(0, 3)
        pos = int(rng.integers(1, len(word) - 1))
        if op == 0:  # swap adjacent characters
            chars = list(word)
            chars[pos], chars[pos - 1] = chars[pos - 1], chars[pos]
            return "".join(chars)
        if op == 1:  # delete a character
            return word[:pos] + word[pos + 1 :]
        replacement = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
        return word[:pos] + replacement + word[pos + 1 :]

    def _abbreviate(self, word: str) -> str:
        if len(word) <= 3:
            return word
        keep = max(2, len(word) // 2)
        return word[:keep]

    def _reformat_number(self, token: str) -> str:
        digits = "".join(c for c in token if c.isdigit())
        if not digits:
            return token
        if token.endswith("gb"):
            return f"{digits} gb"
        if "." in token:
            return digits if self._rng.random() < 0.5 else f"{token} in"
        return token

    # ------------------------------------------------------------------ value
    def corrupt(self, value: str) -> str:
        """Return a corrupted variant of ``value`` (possibly identical)."""
        cfg = self.config
        rng = self._rng
        if not value:
            return value
        if rng.random() < cfg.missing_prob:
            return ""
        tokens = value.split()
        # Synonym substitution for colour-like tokens.
        if rng.random() < cfg.synonym_prob:
            tokens = [
                rng.choice(COLOR_SYNONYMS[t]) if t in COLOR_SYNONYMS and rng.random() < 0.8 else t
                for t in tokens
            ]
        # Numeric reformatting (64gb -> 64 gb, 5.5 -> 5.5 in).
        if rng.random() < cfg.numeric_format_prob:
            tokens = [self._reformat_number(t) for t in tokens]
        # Token drop (never drop the only token).
        if len(tokens) > 1 and rng.random() < cfg.drop_token_prob:
            drop = int(rng.integers(0, len(tokens)))
            tokens = tokens[:drop] + tokens[drop + 1 :]
        # Token addition (marketing noise).
        if rng.random() < cfg.add_token_prob:
            tokens.append(str(rng.choice(MARKETING_TOKENS)))
        # Abbreviation of one token.
        if rng.random() < cfg.abbreviate_prob and tokens:
            pos = int(rng.integers(0, len(tokens)))
            tokens[pos] = self._abbreviate(tokens[pos])
        # Typo in one token.
        if rng.random() < cfg.typo_prob and tokens:
            pos = int(rng.integers(0, len(tokens)))
            tokens[pos] = self._typo(tokens[pos])
        # Local reorder.
        if len(tokens) > 2 and rng.random() < cfg.reorder_prob:
            pos = int(rng.integers(0, len(tokens) - 1))
            tokens[pos], tokens[pos + 1] = tokens[pos + 1], tokens[pos]
        text = " ".join(t for t in tokens if t)
        if rng.random() < cfg.case_prob:
            text = text.upper() if rng.random() < 0.5 else text.title()
        return text

    def corrupt_record(self, values: dict[str, str], protected: set[str] | None = None) -> dict[str, str]:
        """Corrupt every attribute value except the ``protected`` ones."""
        protected = protected or set()
        return {
            attr: value if attr in protected else self.corrupt(value)
            for attr, value in values.items()
        }
