"""repro — reproduction of "MultiEM: Efficient and Effective Unsupervised
Multi-Table Entity Matching" (ICDE 2024).

Public API highlights:

* :class:`repro.MultiEM` — the unsupervised multi-table matcher.
* :func:`repro.load_benchmark` — synthetic stand-ins for the paper's datasets.
* :func:`repro.evaluate` — tuple-F1 / pair-F1 evaluation against ground truth.
* :mod:`repro.baselines` — pairwise/chain extensions, AutoFJ, MSCD-HAC/AP,
  supervised pair classifiers, ALMSER-GB stand-in.
* :mod:`repro.experiments` — regenerate every table and figure of the paper.

ANN backends and index reuse
----------------------------
The merging stage's mutual top-K searches run on a pluggable ANN layer
(:mod:`repro.ann`). ``MergingConfig.index`` selects the backend: ``"auto"``
(exact brute force up to ``brute_force_limit`` rows, HNSW beyond),
``"brute-force"``, ``"hnsw"`` (knobs: ``hnsw_max_degree``,
``hnsw_ef_construction``, ``hnsw_ef_search``) or ``"lsh"`` (knobs:
``lsh_num_tables``, ``lsh_num_bits``, ``lsh_probe_neighbors``). All
backends share one candidate-generation → exact-re-rank query engine
(:mod:`repro.ann.engine`); with a C toolchain present its hot loops — the
HNSW traversals *and* the LSH probe re-rank — run through a runtime-compiled
native kernel that is byte-identical to the numpy paths (``REPRO_NATIVE=0``
forces the fallback for both backends, ``REPRO_NATIVE=require`` hard-fails
when the kernel cannot load). With ``MergingConfig.index_cache`` enabled
(default, capacity ``index_cache_entries``), indexes built during
hierarchical merging are reused across levels — and across
:meth:`IncrementalMultiEM.add_table` calls — whenever reuse is
byte-identical to rebuilding (exact content match or incremental extension
of a prefix), so cached runs return exactly the same tuples.
``MultiEM(parallel)`` executes merge and prune fan-outs on a persistent
worker pool (``ParallelConfig.backend``: threads or processes); process
workers warm the native kernel once and keep snapshot-seeded index caches
across the whole run. ``python -m pytest benchmarks -q -m smoke`` exercises
this layer at tiny scale; ``benchmarks/bench_substrates.py`` and
``benchmarks/bench_pipeline.py`` measure it at 10k rows.

Persistence and serving
-----------------------
:mod:`repro.store` snapshots every fitted artifact — integrated
``ItemTable``, embedding store, ANN indexes with their cache, the fitted
encoder — into one versioned, memory-mappable file: ``load(mmap=True)``
restores zero-copy and byte-identical. ``ParallelConfig.shared_memory=True``
moves the process pool's task arrays into shared-memory planes (no pickled
tables in either direction), and :class:`repro.store.MatchSession` serves
``match_new_table`` / nearest-tuple queries from a snapshot without
refitting (CLI: ``snapshot save|load``, ``serve-match``).
"""

from .config import (
    MergingConfig,
    MultiEMConfig,
    ParallelConfig,
    PruningConfig,
    RepresentationConfig,
    paper_default_config,
)
from .core import IncrementalMultiEM, MatchResult, MultiEM
from .data import Entity, EntityRef, MultiTableDataset, Table
from .data.generators import available_datasets, load_benchmark
from .evaluation import EvaluationReport, evaluate
from .exceptions import (
    BaselineUnsupportedError,
    ConfigurationError,
    DataError,
    EvaluationError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "MultiEM",
    "IncrementalMultiEM",
    "MatchResult",
    "MultiEMConfig",
    "RepresentationConfig",
    "MergingConfig",
    "PruningConfig",
    "ParallelConfig",
    "paper_default_config",
    "Entity",
    "EntityRef",
    "Table",
    "MultiTableDataset",
    "load_benchmark",
    "available_datasets",
    "evaluate",
    "EvaluationReport",
    "ReproError",
    "ConfigurationError",
    "SchemaError",
    "DataError",
    "EvaluationError",
    "BaselineUnsupportedError",
    "__version__",
]
