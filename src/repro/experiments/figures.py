"""Builders for the paper's figures (2, 5, 6) as data series.

The reproduction produces *numbers*, not plots: each builder returns rows
that, plotted, give the corresponding paper figure. The benchmark scripts
print these rows; EXPERIMENTS.md records them.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..config import (
    REPRO_EPSILON_GRID,
    REPRO_GAMMA_GRID,
    REPRO_M_GRID,
    paper_default_config,
)
from ..core import MultiEM
from ..data.generators import DATASET_NAMES, load_benchmark
from ..evaluation.metrics import evaluate
from .runner import run_experiment


def figure5_module_times(
    dataset_names: Sequence[str] = DATASET_NAMES, *, profile: str = "bench", seed: int = 0
) -> list[dict[str, object]]:
    """Figure 5: running time of each key module, serial and parallel.

    Columns use the paper's abbreviations: S = attribute selection,
    R = representation, M/M(p) = merging serial/parallel, P/P(p) = pruning
    serial/parallel.
    """
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        serial = run_experiment("MultiEM", dataset, seed=seed)
        parallel = run_experiment("MultiEM (parallel)", dataset, seed=seed)
        if serial.status != "ok" or parallel.status != "ok":
            continue
        rows.append(
            {
                "dataset": name,
                "S": round(serial.stage_timings.get("attribute_selection", 0.0), 2),
                "R": round(serial.stage_timings.get("representation", 0.0), 2),
                "M": round(serial.stage_timings.get("merging", 0.0), 2),
                "M(p)": round(parallel.stage_timings.get("merging", 0.0), 2),
                "P": round(serial.stage_timings.get("pruning", 0.0), 2),
                "P(p)": round(parallel.stage_timings.get("pruning", 0.0), 2),
            }
        )
    return rows


def _sweep(
    dataset_names: Sequence[str],
    parameter: str,
    values: Sequence[float | int],
    *,
    profile: str,
    seed: int,
    include_time: bool = True,
) -> list[dict[str, object]]:
    """Shared sweep driver for the Figure 6 sensitivity panels."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        baseline_time: float | None = None
        for value in values:
            config = paper_default_config(name)
            if parameter == "gamma":
                config = config.with_overrides(representation={"gamma": float(value)})
            elif parameter == "m":
                config = config.with_overrides(merging={"m": float(value)})
            elif parameter == "epsilon":
                config = config.with_overrides(pruning={"epsilon": float(value)})
            elif parameter == "seed":
                config = config.with_overrides(
                    merging={"seed": int(value)}, representation={"seed": int(value)}
                )
            started = time.perf_counter()
            result = MultiEM(config).match(dataset)
            elapsed = time.perf_counter() - started
            report = evaluate(result, dataset)
            if baseline_time is None:
                baseline_time = elapsed
            row: dict[str, object] = {
                "dataset": name,
                parameter: value,
                "F1": round(report.f1, 1),
                "pair-F1": round(report.pair_f1, 1),
            }
            if include_time:
                row["normalized time"] = round(elapsed / baseline_time, 2) if baseline_time else 1.0
            rows.append(row)
    return rows


def figure6_gamma(
    dataset_names: Sequence[str] = DATASET_NAMES,
    values: Sequence[float] = REPRO_GAMMA_GRID,
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Figure 6(a): sensitivity to the attribute-selection threshold γ."""
    return _sweep(dataset_names, "gamma", values, profile=profile, seed=seed, include_time=False)


def figure6_seed(
    dataset_names: Sequence[str] = DATASET_NAMES,
    values: Sequence[int] = (0, 1, 2, 3),
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Figure 6(b): sensitivity to the merging order (random seed)."""
    return _sweep(dataset_names, "seed", values, profile=profile, seed=seed, include_time=False)


def figure6_m(
    dataset_names: Sequence[str] = DATASET_NAMES,
    values: Sequence[float] = REPRO_M_GRID,
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Figures 6(c) and 6(d): sensitivity of F1 and running time to m."""
    return _sweep(dataset_names, "m", values, profile=profile, seed=seed)


def figure6_epsilon(
    dataset_names: Sequence[str] = DATASET_NAMES,
    values: Sequence[float] = REPRO_EPSILON_GRID,
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Figures 6(e) and 6(f): sensitivity of F1 and running time to ε."""
    return _sweep(dataset_names, "epsilon", values, profile=profile, seed=seed)


def figure2_strategy_scaling(
    *,
    num_sources_values: Sequence[int] = (2, 4, 8),
    entities_per_source: int = 300,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Figure 2 / Lemmas 1-3: pairwise vs chain vs hierarchical merging cost.

    Uses the music generator at a fixed per-source size and varies the number
    of sources, timing the AutoFJ pairwise/chain drivers against MultiEM's
    hierarchical merging. The expected shape: pairwise grows quadratically in
    the number of sources, chain grows super-linearly, hierarchical stays
    close to linear.
    """
    from ..baselines import AutoFuzzyJoin, ChainMatchingDriver, PairwiseMatchingDriver
    from ..data.generators import GeneratorConfig, MusicGenerator

    rows: list[dict[str, object]] = []
    for num_sources in num_sources_values:
        config = GeneratorConfig(
            num_sources=num_sources, num_entities=entities_per_source, seed=seed
        )
        dataset = MusicGenerator(config).generate(f"music-S{num_sources}")

        timings: dict[str, float] = {}
        started = time.perf_counter()
        PairwiseMatchingDriver(AutoFuzzyJoin(max_total_entities=None)).match(dataset)
        timings["pairwise"] = time.perf_counter() - started

        started = time.perf_counter()
        ChainMatchingDriver(AutoFuzzyJoin(max_total_entities=None)).match(dataset)
        timings["chain"] = time.perf_counter() - started

        started = time.perf_counter()
        MultiEM(paper_default_config("music-20")).match(dataset)
        timings["hierarchical"] = time.perf_counter() - started

        rows.append(
            {
                "sources": num_sources,
                "entities": dataset.num_entities,
                "pairwise (s)": round(timings["pairwise"], 2),
                "chain (s)": round(timings["chain"], 2),
                "hierarchical (s)": round(timings["hierarchical"], 2),
            }
        )
    return rows
