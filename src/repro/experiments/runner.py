"""Experiment runner: run (method, dataset) cells and collect every metric.

One :class:`ExperimentRun` per cell holds effectiveness (Table IV), running
time (Table V), memory (Table VI), and stage timings (Figure 5), so each
benchmark only formats a different projection of the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..data.dataset import MultiTableDataset
from ..data.generators import load_benchmark
from ..evaluation.metrics import EvaluationReport, evaluate
from ..evaluation.profiler import format_duration, format_memory, profile_call
from ..core.result import MatchResult
from ..exceptions import BaselineUnsupportedError, ReproError
from .methods import create_method


@dataclass
class ExperimentRun:
    """Outcome of running one method on one dataset."""

    method: str
    dataset: str
    status: str  # "ok", "unsupported", or "error"
    reason: str = ""
    report: EvaluationReport | None = None
    result: MatchResult | None = None
    elapsed_seconds: float = 0.0
    peak_memory_bytes: int = 0
    stage_timings: dict[str, float] = field(default_factory=dict)

    # -------------------------------------------------------------- renderers
    def effectiveness_row(self) -> dict[str, object]:
        """Row for Table IV (``\\`` marks unsupported runs, as in the paper)."""
        if self.status != "ok" or self.report is None:
            marker = "-" if self.status == "unsupported" else "\\"
            return {"method": self.method, "dataset": self.dataset,
                    "P": marker, "R": marker, "F1": marker, "pair-F1": marker}
        row = self.report.as_row()
        row["method"] = self.method  # registry label (distinguishes ablation variants)
        return row

    def runtime_row(self) -> dict[str, object]:
        """Row for Table V."""
        value = format_duration(self.elapsed_seconds) if self.status == "ok" else "-"
        return {"method": self.method, "dataset": self.dataset, "time": value,
                "seconds": round(self.elapsed_seconds, 2) if self.status == "ok" else None}

    def memory_row(self) -> dict[str, object]:
        """Row for Table VI."""
        value = format_memory(self.peak_memory_bytes) if self.status == "ok" else "-"
        return {"method": self.method, "dataset": self.dataset, "memory": value,
                "bytes": self.peak_memory_bytes if self.status == "ok" else None}


def run_experiment(
    method: str,
    dataset: MultiTableDataset,
    *,
    seed: int = 0,
) -> ExperimentRun:
    """Run one method on one (already loaded) dataset, profiling the call."""
    try:
        matcher = create_method(method, dataset.name, seed=seed)
        profiled = profile_call(lambda: matcher.match(dataset))
        result: MatchResult = profiled.value  # type: ignore[assignment]
        report = evaluate(result, dataset)
        return ExperimentRun(
            method=method,
            dataset=dataset.name,
            status="ok",
            report=report,
            result=result,
            elapsed_seconds=profiled.elapsed_seconds,
            peak_memory_bytes=profiled.peak_memory_bytes,
            stage_timings=result.timings.as_dict(),
        )
    except BaselineUnsupportedError as exc:
        return ExperimentRun(method=method, dataset=dataset.name, status="unsupported", reason=str(exc))
    except ReproError as exc:
        return ExperimentRun(method=method, dataset=dataset.name, status="error", reason=str(exc))


def run_matrix(
    methods: Sequence[str],
    dataset_names: Sequence[str],
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[ExperimentRun]:
    """Run every method on every dataset (the full Table IV/V/VI matrix)."""
    runs: list[ExperimentRun] = []
    for dataset_name in dataset_names:
        dataset = load_benchmark(dataset_name, profile=profile, seed=seed)
        for method in methods:
            runs.append(run_experiment(method, dataset, seed=seed))
    return runs
