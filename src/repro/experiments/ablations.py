"""Design-choice ablations beyond the paper's own w/o-EER and w/o-DP rows.

DESIGN.md lists the internal design choices worth ablating; this module runs
them so the ablation benchmark can report how much each choice matters:

* mutual top-K vs one-directional top-K acceptance in two-table merging;
* mean vs medoid representative vector for merged items;
* exact brute-force vs HNSW vs LSH neighbour search;
* density pruning vs no pruning vs a simple distance-to-centroid filter.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..ann.mutual import create_index, top_k_pairs
from ..config import paper_default_config
from ..core import MultiEM
from ..core.merging import hierarchical_merge, items_from_embeddings, candidate_tuples
from ..core.pruning import prune_items
from ..core.representation import EntityRepresenter
from ..core.result import MatchResult, StageTimings
from ..data.dataset import MultiTableDataset
from ..data.generators import load_benchmark
from ..evaluation.metrics import evaluate


def _pipeline_with(
    dataset: MultiTableDataset,
    dataset_name: str,
    *,
    index_backend: str | None = None,
    representative: str = "mean",
    pruning: str = "density",
) -> MatchResult:
    """Run a MultiEM variant with one internal design choice swapped out."""
    config = paper_default_config(dataset_name)
    if index_backend is not None:
        config = config.with_overrides(merging={"index": index_backend})
    representer = EntityRepresenter(config.representation)
    from ..core.attribute_selection import select_attributes

    selection = select_attributes(dataset, representer, config.representation)
    representer.fit(dataset, selection.selected)
    embeddings = representer.encode_dataset(dataset, selection.selected)
    lookup = EntityRepresenter.embedding_lookup(embeddings)
    item_tables = [items_from_embeddings(embeddings[t.name]) for t in dataset.table_list()]
    integrated, _ = hierarchical_merge(
        item_tables, config.merging, representative=representative
    )
    candidates = candidate_tuples(integrated)
    if pruning == "density":
        pruned = prune_items(candidates, lookup, config.pruning)
    elif pruning == "none":
        pruned = candidates
    else:  # centroid: drop members farther than epsilon from the tuple centroid
        pruned = []
        for item in candidates:
            vectors = np.stack([lookup[ref] for ref in item.members])
            centroid = vectors.mean(axis=0)
            distances = np.linalg.norm(vectors - centroid, axis=1)
            keep = [ref for ref, d in zip(item.members, distances) if d <= config.pruning.epsilon]
            if len(keep) >= 2:
                pruned.append(type(item)(members=tuple(keep), vector=item.vector))
    tuples = {frozenset(item.members) for item in pruned}
    return MatchResult(tuples=tuples, method="ablation", timings=StageTimings())


def ablation_index_backend(
    dataset_names: Sequence[str] = ("geo", "music-20"),
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Compare exact, HNSW, and LSH neighbour search inside the merging stage."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        for backend in ("brute-force", "hnsw", "lsh"):
            started = time.perf_counter()
            result = _pipeline_with(dataset, name, index_backend=backend)
            elapsed = time.perf_counter() - started
            report = evaluate(result, dataset)
            rows.append(
                {"dataset": name, "index": backend, "F1": round(report.f1, 1),
                 "pair-F1": round(report.pair_f1, 1), "time (s)": round(elapsed, 2)}
            )
    return rows


def ablation_representative(
    dataset_names: Sequence[str] = ("geo", "music-20"),
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Compare mean vs medoid representative vectors for merged items."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        for representative in ("mean", "medoid"):
            result = _pipeline_with(dataset, name, representative=representative)
            report = evaluate(result, dataset)
            rows.append(
                {"dataset": name, "representative": representative,
                 "F1": round(report.f1, 1), "pair-F1": round(report.pair_f1, 1)}
            )
    return rows


def ablation_pruning_strategy(
    dataset_names: Sequence[str] = ("geo", "music-20"),
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Compare density pruning vs no pruning vs centroid-distance pruning."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        for strategy in ("density", "none", "centroid"):
            result = _pipeline_with(dataset, name, pruning=strategy)
            report = evaluate(result, dataset)
            rows.append(
                {"dataset": name, "pruning": strategy,
                 "F1": round(report.f1, 1), "pair-F1": round(report.pair_f1, 1)}
            )
    return rows


def ablation_mutual_vs_directed(
    dataset_names: Sequence[str] = ("geo", "music-20"),
    *,
    profile: str = "bench",
    seed: int = 0,
) -> list[dict[str, object]]:
    """Quantify how much the mutual-top-K constraint protects precision.

    Compares, for the first pair of tables of each dataset, the precision of
    mutual vs one-directional top-1 neighbour pairs under the dataset's
    distance threshold m.
    """
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        config = paper_default_config(name)
        representer = EntityRepresenter(config.representation)
        embeddings = representer.encode_dataset(dataset)
        tables = dataset.table_list()[:2]
        left, right = embeddings[tables[0].name], embeddings[tables[1].name]
        truth_pairs = dataset.truth_pairs()

        index = create_index("brute-force", config.merging.metric).build(right.vectors)
        directed = top_k_pairs(index, left.vectors, config.merging.k, config.merging.m)
        reverse_index = create_index("brute-force", config.merging.metric).build(left.vectors)
        backward = top_k_pairs(reverse_index, right.vectors, config.merging.k, config.merging.m)
        mutual = directed & {(a, b) for b, a in backward}

        def precision(pairs: set[tuple[int, int]]) -> float:
            if not pairs:
                return 0.0
            hits = 0
            for left_row, right_row in pairs:
                a, b = left.refs[left_row], right.refs[right_row]
                if (min(a, b), max(a, b)) in truth_pairs:
                    hits += 1
            return hits / len(pairs)

        rows.append(
            {
                "dataset": name,
                "directed pairs": len(directed),
                "directed precision": round(100 * precision(directed), 1),
                "mutual pairs": len(mutual),
                "mutual precision": round(100 * precision(mutual), 1),
            }
        )
    return rows
