"""Experiment harness: regenerate every table and figure of the paper."""

from .ablations import (
    ablation_index_backend,
    ablation_mutual_vs_directed,
    ablation_pruning_strategy,
    ablation_representative,
)
from .figures import (
    figure2_strategy_scaling,
    figure5_module_times,
    figure6_epsilon,
    figure6_gamma,
    figure6_m,
    figure6_seed,
)
from .methods import METHOD_REGISTRY, TABLE4_METHODS, TABLE5_METHODS, create_method
from .runner import ExperimentRun, run_experiment, run_matrix
from .tables import (
    table3_dataset_statistics,
    table4_effectiveness,
    table5_runtime,
    table6_memory,
    table7_selected_attributes,
)

__all__ = [
    "METHOD_REGISTRY",
    "TABLE4_METHODS",
    "TABLE5_METHODS",
    "create_method",
    "ExperimentRun",
    "run_experiment",
    "run_matrix",
    "table3_dataset_statistics",
    "table4_effectiveness",
    "table5_runtime",
    "table6_memory",
    "table7_selected_attributes",
    "figure2_strategy_scaling",
    "figure5_module_times",
    "figure6_gamma",
    "figure6_seed",
    "figure6_m",
    "figure6_epsilon",
    "ablation_index_backend",
    "ablation_representative",
    "ablation_pruning_strategy",
    "ablation_mutual_vs_directed",
]
