"""Method registry used by the experiment harness.

Every method the paper evaluates (Table IV) is registered here under the
exact label the paper uses, mapped to a factory that builds a ready-to-run
matcher (an object exposing ``match(dataset) -> MatchResult``) for a given
dataset name.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..baselines import (
    ALMSERGraphBoosted,
    AutoFuzzyJoin,
    ChainMatchingDriver,
    DittoMatcher,
    MSCDAP,
    MSCDHAC,
    PairwiseMatchingDriver,
    PromptEMMatcher,
)
from ..config import paper_default_config
from ..core import MultiEM
from ..data.dataset import MultiTableDataset
from ..core.result import MatchResult
from ..exceptions import ConfigurationError


class Matcher(Protocol):
    """Anything that can match a multi-table dataset."""

    def match(self, dataset: MultiTableDataset) -> MatchResult: ...


MethodFactory = Callable[[str, int], Matcher]


def _multiem(dataset_name: str, seed: int) -> Matcher:
    config = paper_default_config(dataset_name).with_overrides(
        representation={"seed": seed}, merging={"seed": seed}
    )
    return MultiEM(config)


def _multiem_parallel(dataset_name: str, seed: int) -> Matcher:
    config = paper_default_config(dataset_name, parallel=True).with_overrides(
        representation={"seed": seed}, merging={"seed": seed}
    )
    return MultiEM(config)


def _multiem_without_eer(dataset_name: str, seed: int) -> Matcher:
    return _multiem(dataset_name, seed).without_eer()


def _multiem_without_dp(dataset_name: str, seed: int) -> Matcher:
    return _multiem(dataset_name, seed).without_pruning()


METHOD_REGISTRY: dict[str, MethodFactory] = {
    "MultiEM": _multiem,
    "MultiEM (parallel)": _multiem_parallel,
    "MultiEM w/o EER": _multiem_without_eer,
    "MultiEM w/o DP": _multiem_without_dp,
    "PromptEM (pw)": lambda name, seed: PairwiseMatchingDriver(PromptEMMatcher(seed=seed)),
    "PromptEM (c)": lambda name, seed: ChainMatchingDriver(PromptEMMatcher(seed=seed)),
    "Ditto (pw)": lambda name, seed: PairwiseMatchingDriver(DittoMatcher(seed=seed)),
    "Ditto (c)": lambda name, seed: ChainMatchingDriver(DittoMatcher(seed=seed)),
    "AutoFJ (pw)": lambda name, seed: PairwiseMatchingDriver(AutoFuzzyJoin()),
    "AutoFJ (c)": lambda name, seed: ChainMatchingDriver(AutoFuzzyJoin()),
    "ALMSER-GB": lambda name, seed: ALMSERGraphBoosted(seed=seed),
    "MSCD-HAC": lambda name, seed: MSCDHAC(seed=seed),
    "MSCD-AP": lambda name, seed: MSCDAP(seed=seed),
}

#: The method order of Table IV (MSCD-AP is an extra, not in the paper's table).
TABLE4_METHODS = (
    "PromptEM (pw)",
    "Ditto (pw)",
    "AutoFJ (pw)",
    "PromptEM (c)",
    "Ditto (c)",
    "AutoFJ (c)",
    "ALMSER-GB",
    "MSCD-HAC",
    "MultiEM",
    "MultiEM w/o EER",
    "MultiEM w/o DP",
)

#: The method order of Tables V and VI (runtime / memory).
TABLE5_METHODS = TABLE4_METHODS[:-2] + ("MultiEM (parallel)",)


def create_method(name: str, dataset_name: str, seed: int = 0) -> Matcher:
    """Instantiate a registered method for a dataset."""
    factory = METHOD_REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(f"unknown method {name!r}; available: {sorted(METHOD_REGISTRY)}")
    return factory(dataset_name, seed)
