"""Builders for the paper's tables (III, IV, V, VI, VII)."""

from __future__ import annotations

from typing import Sequence

from ..config import paper_default_config
from ..core.attribute_selection import select_attributes
from ..core.representation import EntityRepresenter
from ..data.generators import DATASET_NAMES, load_benchmark, paper_statistics
from .methods import TABLE4_METHODS, TABLE5_METHODS
from .runner import ExperimentRun, run_matrix


def table3_dataset_statistics(
    dataset_names: Sequence[str] = DATASET_NAMES, *, profile: str = "bench", seed: int = 0
) -> list[dict[str, object]]:
    """Table III: statistics of the generated datasets next to the paper's."""
    paper_rows = {row["name"].lower(): row for row in paper_statistics()}
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        stats = dataset.statistics()
        paper_row = paper_rows.get(name, {})
        rows.append(
            {
                "name": name,
                "profile": profile,
                "sources": stats["sources"],
                "attributes": stats["attributes"],
                "entities": stats["entities"],
                "tuples": stats["tuples"],
                "pairs": stats["pairs"],
                "paper entities": paper_row.get("entities", "-"),
                "paper tuples": paper_row.get("tuples", "-"),
                "paper pairs": paper_row.get("pairs", "-"),
            }
        )
    return rows


def table4_effectiveness(
    dataset_names: Sequence[str] = DATASET_NAMES,
    methods: Sequence[str] = TABLE4_METHODS,
    *,
    profile: str = "bench",
    seed: int = 0,
    runs: Sequence[ExperimentRun] | None = None,
) -> list[dict[str, object]]:
    """Table IV: matching performance of every method on every dataset."""
    runs = list(runs) if runs is not None else run_matrix(methods, dataset_names, profile=profile, seed=seed)
    return [run.effectiveness_row() for run in runs]


def table5_runtime(
    dataset_names: Sequence[str] = DATASET_NAMES,
    methods: Sequence[str] = TABLE5_METHODS,
    *,
    profile: str = "bench",
    seed: int = 0,
    runs: Sequence[ExperimentRun] | None = None,
) -> list[dict[str, object]]:
    """Table V: running time comparison."""
    runs = list(runs) if runs is not None else run_matrix(methods, dataset_names, profile=profile, seed=seed)
    return [run.runtime_row() for run in runs]


def table6_memory(
    dataset_names: Sequence[str] = DATASET_NAMES,
    methods: Sequence[str] = TABLE5_METHODS,
    *,
    profile: str = "bench",
    seed: int = 0,
    runs: Sequence[ExperimentRun] | None = None,
) -> list[dict[str, object]]:
    """Table VI: peak memory comparison."""
    runs = list(runs) if runs is not None else run_matrix(methods, dataset_names, profile=profile, seed=seed)
    return [run.memory_row() for run in runs]


def table7_selected_attributes(
    dataset_names: Sequence[str] = DATASET_NAMES, *, profile: str = "bench", seed: int = 0
) -> list[dict[str, object]]:
    """Table VII: attributes chosen by Algorithm 1 on each dataset."""
    rows: list[dict[str, object]] = []
    for name in dataset_names:
        dataset = load_benchmark(name, profile=profile, seed=seed)
        config = paper_default_config(name).representation
        representer = EntityRepresenter(config)
        selection = select_attributes(dataset, representer, config)
        rows.append(
            {
                "dataset": name,
                "all attributes": ", ".join(dataset.schema),
                "selected attributes": ", ".join(selection.selected),
                "scores": {attr: round(score, 3) for attr, score in selection.scores.items()},
            }
        )
    return rows
