"""Exception hierarchy for the MultiEM reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration mistakes from data
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class SchemaError(ReproError):
    """Tables with incompatible schemas were combined, or an attribute is unknown."""


class DataError(ReproError):
    """Input data is malformed (empty tables, duplicate identifiers, bad files)."""


class IndexError_(ReproError):
    """An ANN index was queried before being built, or with bad parameters."""


class StoreError(ReproError):
    """A snapshot could not be written, parsed, or restored (bad magic,
    unsupported format version, truncated buffer, or unsupported object)."""


class StoreLockedError(StoreError):
    """Another live writer holds the store directory's ``.lock`` file;
    concurrent ``save``/``append``/``compact`` calls fail fast instead of
    interleaving their temp files and chain links."""


class ShardError(ReproError):
    """A shard plan is inconsistent with the tables it partitions (wrong row
    counts, owner ids out of range, or a key family the entry point cannot
    compute from the data it holds)."""


class ServeError(ReproError):
    """The match-serving plane failed (no healthy workers, malformed frame,
    worker protocol violation); HTTP-level misuse is reported to the client
    as a status code instead and never raises this."""


class EvaluationError(ReproError):
    """Ground truth and predictions cannot be compared (e.g. unknown entity refs)."""


class BaselineUnsupportedError(ReproError):
    """A baseline declines to run (dataset too large, as in the paper's '-' cells)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
