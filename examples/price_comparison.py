"""Price-comparison scenario: find the best price for each product across shops.

This is the motivating application from the paper's introduction (PriceRunner
/ Skroutz style services): the same product is listed with different titles on
many marketplaces, and the service must group the listings before it can
compare prices.

Run with::

    python examples/price_comparison.py
"""

from __future__ import annotations

from repro import MultiEM, load_benchmark, paper_default_config


def main() -> None:
    dataset = load_benchmark("product", profile="tiny", seed=21)
    print(f"{dataset.num_sources} marketplaces, {dataset.num_entities} listings")

    result = MultiEM(paper_default_config("product")).match(dataset)
    print(f"grouped into {result.num_tuples} multi-shop products\n")

    # For every predicted product group, report the cheapest listing.
    savings = []
    print(f"{'product (representative title)':55s} {'best price':>10s} {'worst':>8s} {'shops':>6s}")
    for tup in sorted(result.tuples, key=len, reverse=True)[:10]:
        listings = [dataset.entity(ref) for ref in sorted(tup)]
        prices = []
        for listing in listings:
            try:
                prices.append(float(listing.get("price", "0") or 0))
            except ValueError:
                continue
        if not prices:
            continue
        best, worst = min(prices), max(prices)
        savings.append(worst - best)
        title = listings[0].get("title", "")[:53]
        print(f"{title:55s} {best:10.2f} {worst:8.2f} {len(listings):6d}")

    if savings:
        print(f"\naverage spread between best and worst price: {sum(savings) / len(savings):.2f}")


if __name__ == "__main__":
    main()
