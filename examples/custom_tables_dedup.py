"""Matching your own tables: build Tables by hand, match, and persist results.

Shows the lower-level API for users who bring their own data instead of the
benchmark generators: construct :class:`repro.Table` objects, wrap them in a
:class:`repro.MultiTableDataset`, run MultiEM, and write the dataset plus the
predicted groups to disk.

Run with::

    python examples/custom_tables_dedup.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import MultiEM, MultiEMConfig, MultiTableDataset, Table
from repro.data import save_dataset
from repro.data.io import refs_to_json


def build_tables() -> list[Table]:
    """Three small supplier feeds describing overlapping electronics."""
    shop_a = Table("shop_a", ("title", "brand", "color"), [
        ("apple iphone 8 plus 64gb", "apple", "silver"),
        ("samsung galaxy s10 128gb dual sim", "samsung", "black"),
        ("logitech mx master 3 wireless mouse", "logitech", "graphite"),
        ("canon eos 2000d dslr camera 18-55mm kit", "canon", "black"),
    ])
    shop_b = Table("shop_b", ("title", "brand", "color"), [
        ("iphone 8 plus 5.5 inch 64 gb unlocked", "apple", "sv"),
        ("galaxy s10 128 gb prism", "samsung", "jet black"),
        ("dyson v11 absolute cordless vacuum", "dyson", "nickel"),
    ])
    shop_c = Table("shop_c", ("title", "brand", "color"), [
        ("apple iphone 8 plus 64 gb 12 mp ios 11", "apple", "silver"),
        ("logitech mx master 3 mouse bluetooth", "logitech", "grey"),
        ("canon 2000d camera with 18-55 lens", "canon", "black"),
    ])
    return [shop_a, shop_b, shop_c]


def main() -> None:
    dataset = MultiTableDataset.from_tables("supplier-feeds", build_tables())
    print(f"{dataset.num_sources} feeds, {dataset.num_entities} records, schema={list(dataset.schema)}")

    # Unlabeled data: no ground truth, so we only produce predictions.
    config = MultiEMConfig().with_overrides(
        merging={"m": 0.55},
        representation={"sample_ratio": 1.0},
    )
    result = MultiEM(config).match(dataset)

    print(f"\npredicted groups ({result.num_tuples}):")
    for tup in sorted(result.tuples, key=sorted):
        titles = [f"[{ref.source}] {dataset.entity(ref).get('title')}" for ref in sorted(tup)]
        print("  - " + "\n    ".join(titles))

    # Persist both the dataset and the predictions.
    output = Path(tempfile.mkdtemp(prefix="repro-example-"))
    save_dataset(dataset, output / "dataset")
    predictions_path = output / "predicted_groups.json"
    predictions_path.write_text(json.dumps(refs_to_json(result.tuples), indent=2), encoding="utf-8")
    print(f"\ndataset written to {output / 'dataset'}")
    print(f"predictions written to {predictions_path}")


if __name__ == "__main__":
    main()
