"""Quickstart: match a synthetic multi-source product catalogue with MultiEM.

Run with::

    python examples/quickstart.py

The script builds a small product dataset spread over four marketplaces,
runs the full MultiEM pipeline (enhanced representation -> hierarchical
merging -> density pruning), evaluates against the generated ground truth,
and prints a few predicted groups with their original records.
"""

from __future__ import annotations

from repro import MultiEM, evaluate, load_benchmark, paper_default_config


def main() -> None:
    # 1. Load a benchmark-shaped dataset. "product" is a 4-source catalogue;
    #    profile "tiny" keeps this script in the sub-second range.
    dataset = load_benchmark("product", profile="tiny", seed=7)
    print(f"dataset: {dataset.name}  sources={dataset.num_sources}  "
          f"entities={dataset.num_entities}  truth tuples={dataset.num_truth_tuples}")

    # 2. Configure and run MultiEM. paper_default_config() returns the
    #    hyper-parameters used by the experiment harness for this dataset.
    pipeline = MultiEM(paper_default_config("product"))
    result = pipeline.match(dataset)
    print(f"selected attributes: {', '.join(result.selected_attributes)}")
    print(f"predicted tuples: {result.num_tuples}")
    print("stage timings (s):", {k: round(v, 3) for k, v in result.timings.as_dict().items()})

    # 3. Evaluate against the ground truth (tuple-level F1 and pair-level F1).
    report = evaluate(result, dataset)
    print(f"tuple F1 = {report.f1:.1f}   pair-F1 = {report.pair_f1:.1f}")

    # 4. Inspect a few predicted groups.
    print("\nsample predicted groups:")
    for tup in sorted(result.tuples, key=len, reverse=True)[:3]:
        print("  group:")
        for ref in sorted(tup):
            entity = dataset.entity(ref)
            print(f"    [{ref.source}] {entity.get('title')} ({entity.get('color')})")


if __name__ == "__main__":
    main()
