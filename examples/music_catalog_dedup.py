"""Music catalogue integration: merge five track catalogues into one.

Mirrors the paper's Music-20/200/2000 benchmarks: five sources describe the
same tracks with different identifiers, formats, and typos. The example shows

* how Algorithm 1 discards the metadata columns (id, number, length, year,
  language) and keeps title/artist/album (Table VII),
* how the predictions compare against the MSCD-HAC clustering baseline, and
* how to export the integrated catalogue with one canonical row per entity.

Run with::

    python examples/music_catalog_dedup.py
"""

from __future__ import annotations

from collections import Counter

from repro import MultiEM, evaluate, load_benchmark, paper_default_config
from repro.baselines import MSCDHAC
from repro.exceptions import BaselineUnsupportedError


def main() -> None:
    dataset = load_benchmark("music-20", profile="tiny", seed=3)
    print(f"{dataset.num_sources} catalogues, {dataset.num_entities} records, "
          f"{dataset.num_truth_tuples} true cross-catalogue groups")

    pipeline = MultiEM(paper_default_config("music-20"))
    result = pipeline.match(dataset)
    report = evaluate(result, dataset)

    print("\nAlgorithm 1 significance scores:")
    for attribute, score in sorted(result.significance_scores.items(), key=lambda kv: -kv[1]):
        marker = "kept" if attribute in result.selected_attributes else "dropped"
        print(f"  {attribute:10s} {score:6.3f}  ({marker})")

    print(f"\nMultiEM:   tuple F1 = {report.f1:5.1f}   pair-F1 = {report.pair_f1:5.1f}")

    try:
        hac_report = evaluate(MSCDHAC().match(dataset), dataset)
        print(f"MSCD-HAC:  tuple F1 = {hac_report.f1:5.1f}   pair-F1 = {hac_report.pair_f1:5.1f}")
    except BaselineUnsupportedError as exc:
        print(f"MSCD-HAC:  skipped ({exc})")

    # Build the integrated catalogue: one canonical row per predicted group,
    # choosing the longest title as the representative.
    sizes = Counter(len(tup) for tup in result.tuples)
    print(f"\npredicted group sizes: {dict(sorted(sizes.items()))}")
    print("\nintegrated catalogue sample (canonical title | artist | #sources):")
    for tup in sorted(result.tuples, key=len, reverse=True)[:5]:
        records = [dataset.entity(ref) for ref in sorted(tup)]
        canonical = max(records, key=lambda record: len(record.get("title", "")))
        print(f"  {canonical.get('title', ''):40s} | {canonical.get('artist', ''):20s} | {len(records)}")


if __name__ == "__main__":
    main()
