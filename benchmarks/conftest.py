"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper. Two environment
variables control the cost:

* ``REPRO_BENCH_PROFILE`` — dataset scale: ``tiny`` (default here, seconds),
  ``bench`` (minutes, the scale used for EXPERIMENTS.md), or ``paper``.
* ``REPRO_BENCH_DATASETS`` — comma-separated subset of dataset names.

Each benchmark prints the regenerated rows so ``pytest benchmarks/
--benchmark-only -s`` doubles as the report generator.
"""

from __future__ import annotations

import os

import pytest

from repro.data.generators import DATASET_NAMES

DEFAULT_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "tiny")
_dataset_env = os.environ.get("REPRO_BENCH_DATASETS", "")
DEFAULT_DATASETS: tuple[str, ...] = (
    tuple(name.strip() for name in _dataset_env.split(",") if name.strip())
    or ("geo", "music-20", "shopee")
)
ALL_DATASETS = DATASET_NAMES


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return DEFAULT_PROFILE


@pytest.fixture(scope="session")
def bench_datasets() -> tuple[str, ...]:
    return DEFAULT_DATASETS
