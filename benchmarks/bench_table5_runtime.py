"""Table V — running-time comparison (MultiEM and MultiEM(parallel) vs baselines)."""

import pytest

from repro.data.generators import load_benchmark
from repro.evaluation import format_table
from repro.experiments import create_method, run_matrix, table5_runtime

METHODS = ("AutoFJ (pw)", "ALMSER-GB", "MSCD-HAC", "MultiEM", "MultiEM (parallel)")


@pytest.fixture(scope="module")
def runtime_runs(bench_profile, bench_datasets):
    return run_matrix(METHODS, bench_datasets, profile=bench_profile)


def test_table5_runtime(benchmark, runtime_runs, bench_profile, bench_datasets):
    """Regenerate Table V and check MultiEM is never the slowest method."""
    rows = table5_runtime(bench_datasets, METHODS, runs=runtime_runs)
    print("\n" + format_table(rows, title=f"Table V (profile={bench_profile})"))

    for dataset in bench_datasets:
        cells = [r for r in runtime_runs if r.dataset == dataset and r.status == "ok"]
        multiem = next(r for r in cells if r.method == "MultiEM")
        slower_baselines = [r for r in cells if r.method not in ("MultiEM", "MultiEM (parallel)")]
        if slower_baselines:
            slowest = max(r.elapsed_seconds for r in slower_baselines)
            assert multiem.elapsed_seconds <= slowest * 1.5, (
                f"MultiEM should be competitive with the slowest baseline on {dataset}"
            )

    dataset = load_benchmark(bench_datasets[0], profile=bench_profile)
    matcher = create_method("MultiEM", bench_datasets[0])
    benchmark(lambda: matcher.match(dataset))
