"""Figure 5 — running time of each MultiEM module (serial vs parallel)."""

from repro.evaluation import format_table
from repro.experiments import figure5_module_times


def test_figure5_module_times(benchmark, bench_profile, bench_datasets):
    """Regenerate Figure 5's per-module timings."""
    rows = benchmark(lambda: figure5_module_times(bench_datasets, profile=bench_profile))
    print("\n" + format_table(rows, title=f"Figure 5 (profile={bench_profile})"))

    for row in rows:
        stage_total = row["S"] + row["R"] + row["M"] + row["P"]
        assert stage_total >= 0
        # Parallel timings are reported for the same stages.
        assert row["M(p)"] >= 0 and row["P(p)"] >= 0
