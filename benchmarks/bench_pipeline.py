"""End-to-end per-module pipeline benchmark (Figure 5 shape), with a JSON trail.

``run_pipeline_bench`` times one full ``MultiEM.match`` (HNSW backend forced,
best of ``repeats``) and reports the S/R/M/P stage breakdown plus the
``merging + pruning`` aggregate this PR series optimizes.
``write_bench_record`` appends the record to ``BENCH_pipeline.json`` at the
repo root so the perf trajectory is tracked run over run.

Reference points on the bench box (music-200, ``bench`` profile, 11,070 rows,
best of 3): the PR-1 code ran 55.5 s end to end with 53.7 s in
merging + pruning; the flat-array merge/prune engines plus the native HNSW
kernel brought that to 8.2 s end to end with 6.5 s in merging + pruning
(~6.8x / ~8.2x). The PR-3 columnar text substrate then cut the front end
(attribute selection + representation) from 1.73 s to ~0.45 s (~3.7-4x,
tracked as ``selection_plus_representation``), landing at ~6.9 s end to end.
Predicted tuples stay byte-identical throughout (pinned by
``tests/core/test_pipeline_regression.py``).

Besides the per-module pipeline record, this file tracks the unified query
engine's workloads: the LSH-backed 10k mutual merge (native kernel vs the
``REPRO_NATIVE=0`` numpy path, digests asserted identical), the
persistent-vs-fresh process-pool merge+prune comparison, and the
LSH / HNSW / brute-force backend timing matrix — all appended to
``BENCH_pipeline.json``.

Run at scale:    REPRO_BENCH_PROFILE=bench python -m pytest benchmarks/bench_pipeline.py -q -s
Smoke (tier-1):  python -m pytest benchmarks -q -m smoke
"""

import hashlib
import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.config import MergingConfig, ParallelConfig, PruningConfig, paper_default_config
from repro.core import MultiEM
from repro.core.merging import ItemTable, hierarchical_merge_tables
from repro.core.parallel import ParallelExecutor
from repro.core.pruning import prune_items
from repro.core.representation import EmbeddingStore, TableEmbeddings
from repro.data.entity import EntityRef
from repro.data.generators import load_benchmark

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_pipeline.json")
_SRC_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run_pipeline_bench(
    dataset_name: str = "music-200",
    profile: str = "bench",
    *,
    backend: str = "hnsw",
    repeats: int = 1,
) -> dict:
    """Time ``MultiEM.match`` end to end; returns the best trial's stage record."""
    dataset = load_benchmark(dataset_name, profile=profile)
    rows = sum(len(table) for table in dataset.table_list())
    config = paper_default_config(dataset_name).with_overrides(merging={"index": backend})
    best_total = None
    best_result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = MultiEM(config).match(dataset)
        total = time.perf_counter() - started
        if best_total is None or total < best_total:
            best_total, best_result = total, result
    stages = best_result.timings.as_dict()
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": backend,
        "rows": rows,
        "repeats": max(repeats, 1),
        "num_tuples": len(best_result.tuples),
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "merging_plus_pruning": round(stages["merging"] + stages["pruning"], 4),
        "selection_plus_representation": round(
            stages["attribute_selection"] + stages["representation"], 4
        ),
        "wall_total": round(best_total, 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _pair_digest(pairs) -> str:
    """Order-independent digest of a mutual-pair set."""
    blob = ",".join(f"{p.left}:{p.right}" for p in sorted(pairs, key=lambda p: (p.left, p.right)))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


_LSH_MERGE_SNIPPET = """\
import json, sys, time
import numpy as np
sys.path.insert(0, {src!r})
from repro.ann import mutual_top_k
rng = np.random.default_rng(42)
left = rng.normal(size=({rows}, 64)).astype(np.float32)
right = left[rng.permutation({rows})] + rng.normal(scale=0.01, size=({rows}, 64)).astype(np.float32)
best = None
for _ in range({repeats}):
    t0 = time.perf_counter()
    pairs = mutual_top_k(left, right, k=1, max_distance=0.3, backend="lsh", index_kwargs={{"seed": 0}})
    el = time.perf_counter() - t0
    best = el if best is None or el < best else best
import hashlib
blob = ",".join(f"{{p.left}}:{{p.right}}" for p in sorted(pairs, key=lambda p: (p.left, p.right)))
print(json.dumps({{"seconds": best, "pairs": len(pairs), "digest": hashlib.sha256(blob.encode()).hexdigest()[:16]}}))
"""


#: Best of 3 for the identical 10k x 10k workload (seed 42) on the PR-3 code
#: — per-row Python re-rank plus numpy's hash-path ``np.unique`` dedup —
#: measured on the bench box when the unified engine landed. Kept as the
#: speedup denominator in the JSON trail; pair digest a6aa0e21d3e01592 is
#: unchanged across the refactor.
_LSH_MERGE_10K_PRE_ENGINE_SECONDS = 5.375


def run_lsh_merge_bench(rows: int = 10_000, repeats: int = 3) -> dict:
    """LSH-backed mutual merge over two ``rows``-row twin clouds, best of N.

    Times the in-process path (native kernel when available) and a
    ``REPRO_NATIVE=0`` subprocess leg (the pure-numpy engine fallback), and
    asserts their mutual-pair digests are identical — the byte-identity
    contract of the shared query engine.
    """
    from repro.ann import mutual_top_k
    from repro.ann import native as native_mod

    rng = np.random.default_rng(42)
    left = rng.normal(size=(rows, 64)).astype(np.float32)
    right = left[rng.permutation(rows)] + rng.normal(scale=0.01, size=(rows, 64)).astype(np.float32)
    best = None
    pairs = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        pairs = mutual_top_k(left, right, k=1, max_distance=0.3, backend="lsh", index_kwargs={"seed": 0})
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    snippet = _LSH_MERGE_SNIPPET.format(src=_SRC_PATH, rows=rows, repeats=max(repeats, 1))
    env = {**os.environ, "REPRO_NATIVE": "0"}
    completed = subprocess.run(
        [sys.executable, "-c", snippet], capture_output=True, text=True, env=env, check=True
    )
    fallback = json.loads(completed.stdout.strip().splitlines()[-1])
    digest = _pair_digest(pairs)
    assert fallback["digest"] == digest, "REPRO_NATIVE=0 pair set diverged from the native path"
    assert fallback["pairs"] == len(pairs)
    record = {
        "dataset": f"lsh-merge-{rows}x2",
        "profile": "tiny" if rows < 10_000 else "bench",
        "backend": "lsh",
        "kind": "lsh_mutual_merge",
        "rows": 2 * rows,
        "repeats": max(repeats, 1),
        "mutual_pairs": len(pairs),
        "pair_digest": digest,
        "native_enabled": native_mod.get_kernel() is not None,
        "seconds": round(best, 4),
        "seconds_python_fallback": round(fallback["seconds"], 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if rows == 10_000:
        record["seconds_pre_engine_reference"] = _LSH_MERGE_10K_PRE_ENGINE_SECONDS
        record["speedup_vs_pre_engine"] = round(_LSH_MERGE_10K_PRE_ENGINE_SECONDS / best, 2)
    return record


def _pool_bench_tables(num_tables: int, rows: int) -> tuple[list, EmbeddingStore]:
    base = np.random.default_rng(0).normal(size=(rows, 64)).astype(np.float32)
    tables = []
    store = EmbeddingStore()
    for seed in range(num_tables):
        rng = np.random.default_rng(seed + 1)
        vectors = (base + rng.normal(scale=0.008, size=(rows, 64))).astype(np.float32)
        name = f"s{seed}"
        tables.append(
            ItemTable(
                vectors,
                np.zeros(rows, dtype=np.int32),
                np.arange(rows, dtype=np.int64),
                np.arange(rows + 1, dtype=np.int64),
                (name,),
            )
        )
        store.add_table(
            TableEmbeddings(name, [EntityRef(name, i) for i in range(rows)], vectors)
        )
    return tables, store


def run_process_pool_bench(num_tables: int = 8, rows: int = 1200, repeats: int = 3) -> dict:
    """Process-backend merge+prune: persistent pool vs fresh pool per call.

    ``reuse_pool=False`` restores the historical spin-up-per-``map``
    behaviour; the persistent pool keeps workers (and their warmed kernels
    and index caches) alive across every hierarchy level and the pruning
    fan-out. Outputs are asserted identical to the serial run either way.
    """
    tables, store = _pool_bench_tables(num_tables, rows)
    merging = MergingConfig(index="hnsw", m=0.5)
    pruning = PruningConfig(epsilon=1.0)

    def run(reuse_pool: bool):
        executor = ParallelExecutor(
            ParallelConfig(enabled=True, backend="process", max_workers=2, reuse_pool=reuse_pool)
        )
        try:
            best = None
            outputs = None
            for _ in range(max(repeats, 1)):
                started = time.perf_counter()
                merged, _ = hierarchical_merge_tables(
                    [table for table in tables], merging, executor=executor
                )
                pruned = prune_items(
                    merged.filter(merged.sizes >= 2).to_items(), store, pruning,
                    executor=executor,
                )
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best, outputs = elapsed, (merged, pruned)
            return best, outputs
        finally:
            executor.close()

    fresh_seconds, fresh_outputs = run(False)
    reuse_seconds, reuse_outputs = run(True)
    serial_merged, _ = hierarchical_merge_tables([table for table in tables], merging)
    serial_pruned = prune_items(
        serial_merged.filter(serial_merged.sizes >= 2).to_items(), store, pruning
    )
    for merged, pruned in (fresh_outputs, reuse_outputs):
        assert np.array_equal(merged.vectors, serial_merged.vectors)
        assert np.array_equal(merged.member_offsets, serial_merged.member_offsets)
        assert [item.members for item in pruned] == [item.members for item in serial_pruned]
    return {
        "dataset": f"process-pool-{num_tables}x{rows}",
        "profile": "tiny" if rows < 1000 else "bench",
        "backend": "process",
        "kind": "process_pool_merge_prune",
        "rows": num_tables * rows,
        "repeats": max(repeats, 1),
        "pruned_tuples": len(serial_pruned),
        "seconds_fresh_pool": round(fresh_seconds, 4),
        "seconds_persistent_pool": round(reuse_seconds, 4),
        "pool_reuse_speedup": round(fresh_seconds / max(reuse_seconds, 1e-9), 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_bench_record(record: dict, path: str = BENCH_JSON_PATH) -> None:
    """Append one record to the JSON trail (created on first write).

    Tiny-profile (smoke) records replace the previous record for the same
    workload instead of appending, so the trail tracks real bench runs and
    is not flooded by one smoke record per tier-1 invocation.
    """
    trail = {"description": "MultiEM per-module pipeline timings (Figure 5 shape)", "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
                trail = existing
        except (OSError, ValueError):
            pass
    if record.get("profile") == "tiny":
        key = (record.get("dataset"), record.get("profile"), record.get("backend"))
        trail["runs"] = [
            run
            for run in trail["runs"]
            if (run.get("dataset"), run.get("profile"), run.get("backend")) != key
        ]
    trail["runs"].append(record)
    with open(path, "w") as handle:
        json.dump(trail, handle, indent=2)
        handle.write("\n")


def _format_record(record: dict) -> str:
    stages = record["stages"]
    front_end = record.get(
        "selection_plus_representation",
        round(stages["attribute_selection"] + stages["representation"], 4),
    )
    return (
        f"{record['dataset']} ({record['profile']}, {record['rows']} rows, "
        f"backend={record['backend']}): "
        f"S={stages['attribute_selection']:.2f}s R={stages['representation']:.2f}s "
        f"M={stages['merging']:.2f}s P={stages['pruning']:.2f}s "
        f"S+R={front_end:.2f}s M+P={record['merging_plus_pruning']:.2f}s "
        f"total={record['wall_total']:.2f}s "
        f"({record['num_tuples']} tuples)"
    )


def test_bench_pipeline_module_times(bench_profile):
    """Regenerate the end-to-end module-time breakdown and extend the JSON trail."""
    repeats = 3 if bench_profile != "tiny" else 1
    record = run_pipeline_bench("music-200", bench_profile, repeats=repeats)
    write_bench_record(record)
    print("\n  " + _format_record(record))
    assert record["num_tuples"] > 0
    assert all(value >= 0 for value in record["stages"].values())


def test_bench_backend_matrix(bench_profile):
    """LSH vs HNSW vs brute-force pipeline timings (the design ablation)."""
    repeats = 3 if bench_profile != "tiny" else 1
    for backend in ("brute-force", "hnsw", "lsh"):
        record = run_pipeline_bench("music-200", bench_profile, backend=backend, repeats=repeats)
        write_bench_record(record)
        print("\n  " + _format_record(record))
        assert record["num_tuples"] > 0


def test_bench_lsh_mutual_merge(bench_profile):
    """LSH-backed mutual merge at scale; native and numpy digests must agree."""
    rows = 2000 if bench_profile == "tiny" else 10_000
    record = run_lsh_merge_bench(rows=rows, repeats=3 if bench_profile != "tiny" else 1)
    write_bench_record(record)
    print(
        f"\n  lsh merge 2x{rows}: {record['seconds']:.2f}s native-mode, "
        f"{record['seconds_python_fallback']:.2f}s REPRO_NATIVE=0, "
        f"{record['mutual_pairs']} pairs (digest {record['pair_digest']})"
    )
    assert record["mutual_pairs"] > 0


def test_bench_process_pool_reuse(bench_profile):
    """Persistent process pool vs the historical fresh-pool-per-call mode."""
    rows = 400 if bench_profile == "tiny" else 1200
    tables = 6 if bench_profile == "tiny" else 8
    record = run_process_pool_bench(
        num_tables=tables, rows=rows, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    print(
        f"\n  process merge+prune over {tables}x{rows} rows: "
        f"fresh pools {record['seconds_fresh_pool']:.2f}s vs persistent "
        f"{record['seconds_persistent_pool']:.2f}s ({record['pool_reuse_speedup']:.2f}x)"
    )
    assert record["seconds_persistent_pool"] > 0
