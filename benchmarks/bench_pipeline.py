"""End-to-end per-module pipeline benchmark (Figure 5 shape), with a JSON trail.

``run_pipeline_bench`` times one full ``MultiEM.match`` (HNSW backend forced,
best of ``repeats``) and reports the S/R/M/P stage breakdown plus the
``merging + pruning`` aggregate this PR series optimizes.
``write_bench_record`` appends the record to ``BENCH_pipeline.json`` at the
repo root so the perf trajectory is tracked run over run.

Reference points on the bench box (music-200, ``bench`` profile, 11,070 rows,
best of 3): the PR-1 code ran 55.5 s end to end with 53.7 s in
merging + pruning; the flat-array merge/prune engines plus the native HNSW
kernel brought that to 8.2 s end to end with 6.5 s in merging + pruning
(~6.8x / ~8.2x). The PR-3 columnar text substrate then cut the front end
(attribute selection + representation) from 1.73 s to ~0.45 s (~3.7-4x,
tracked as ``selection_plus_representation``), landing at ~6.9 s end to end.
Predicted tuples stay byte-identical throughout (pinned by
``tests/core/test_pipeline_regression.py``).

Besides the per-module pipeline record, this file tracks the unified query
engine's workloads: the LSH-backed 10k mutual merge (native kernel vs the
``REPRO_NATIVE=0`` numpy path, digests asserted identical), the
persistent-vs-fresh process-pool merge+prune comparison, and the
LSH / HNSW / brute-force backend timing matrix — all appended to
``BENCH_pipeline.json``.

Run at scale:    REPRO_BENCH_PROFILE=bench python -m pytest benchmarks/bench_pipeline.py -q -s
Smoke (tier-1):  python -m pytest benchmarks -q -m smoke
"""

import hashlib
import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.config import MergingConfig, ParallelConfig, PruningConfig, paper_default_config
from repro.core import MultiEM
from repro.core.merging import ItemTable, hierarchical_merge_tables
from repro.core.parallel import ParallelExecutor
from repro.core.pruning import prune_items
from repro.core.representation import EmbeddingStore, TableEmbeddings
from repro.data.entity import EntityRef
from repro.data.generators import load_benchmark

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_pipeline.json")
_SRC_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run_pipeline_bench(
    dataset_name: str = "music-200",
    profile: str = "bench",
    *,
    backend: str = "hnsw",
    repeats: int = 1,
) -> dict:
    """Time ``MultiEM.match`` end to end; returns the best trial's stage record."""
    dataset = load_benchmark(dataset_name, profile=profile)
    rows = sum(len(table) for table in dataset.table_list())
    config = paper_default_config(dataset_name).with_overrides(merging={"index": backend})
    best_total = None
    best_result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = MultiEM(config).match(dataset)
        total = time.perf_counter() - started
        if best_total is None or total < best_total:
            best_total, best_result = total, result
    stages = best_result.timings.as_dict()
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": backend,
        "rows": rows,
        "repeats": max(repeats, 1),
        "num_tuples": len(best_result.tuples),
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "merging_plus_pruning": round(stages["merging"] + stages["pruning"], 4),
        "selection_plus_representation": round(
            stages["attribute_selection"] + stages["representation"], 4
        ),
        "wall_total": round(best_total, 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _pair_digest(pairs) -> str:
    """Order-independent digest of a mutual-pair set."""
    blob = ",".join(f"{p.left}:{p.right}" for p in sorted(pairs, key=lambda p: (p.left, p.right)))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


_LSH_MERGE_SNIPPET = """\
import json, sys, time
import numpy as np
sys.path.insert(0, {src!r})
from repro.ann import mutual_top_k
rng = np.random.default_rng(42)
left = rng.normal(size=({rows}, 64)).astype(np.float32)
right = left[rng.permutation({rows})] + rng.normal(scale=0.01, size=({rows}, 64)).astype(np.float32)
best = None
for _ in range({repeats}):
    t0 = time.perf_counter()
    pairs = mutual_top_k(left, right, k=1, max_distance=0.3, backend="lsh", index_kwargs={{"seed": 0}})
    el = time.perf_counter() - t0
    best = el if best is None or el < best else best
import hashlib
blob = ",".join(f"{{p.left}}:{{p.right}}" for p in sorted(pairs, key=lambda p: (p.left, p.right)))
print(json.dumps({{"seconds": best, "pairs": len(pairs), "digest": hashlib.sha256(blob.encode()).hexdigest()[:16]}}))
"""


#: Best of 3 for the identical 10k x 10k workload (seed 42) on the PR-3 code
#: — per-row Python re-rank plus numpy's hash-path ``np.unique`` dedup —
#: measured on the bench box when the unified engine landed. Kept as the
#: speedup denominator in the JSON trail; pair digest a6aa0e21d3e01592 is
#: unchanged across the refactor.
_LSH_MERGE_10K_PRE_ENGINE_SECONDS = 5.375


def run_lsh_merge_bench(rows: int = 10_000, repeats: int = 3) -> dict:
    """LSH-backed mutual merge over two ``rows``-row twin clouds, best of N.

    Times the in-process path (native kernel when available) and a
    ``REPRO_NATIVE=0`` subprocess leg (the pure-numpy engine fallback), and
    asserts their mutual-pair digests are identical — the byte-identity
    contract of the shared query engine.
    """
    from repro.ann import mutual_top_k
    from repro.ann import native as native_mod

    rng = np.random.default_rng(42)
    left = rng.normal(size=(rows, 64)).astype(np.float32)
    right = left[rng.permutation(rows)] + rng.normal(scale=0.01, size=(rows, 64)).astype(np.float32)
    best = None
    pairs = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        pairs = mutual_top_k(left, right, k=1, max_distance=0.3, backend="lsh", index_kwargs={"seed": 0})
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    snippet = _LSH_MERGE_SNIPPET.format(src=_SRC_PATH, rows=rows, repeats=max(repeats, 1))
    env = {**os.environ, "REPRO_NATIVE": "0"}
    completed = subprocess.run(
        [sys.executable, "-c", snippet], capture_output=True, text=True, env=env, check=True
    )
    fallback = json.loads(completed.stdout.strip().splitlines()[-1])
    digest = _pair_digest(pairs)
    assert fallback["digest"] == digest, "REPRO_NATIVE=0 pair set diverged from the native path"
    assert fallback["pairs"] == len(pairs)
    record = {
        "dataset": f"lsh-merge-{rows}x2",
        "profile": "tiny" if rows < 10_000 else "bench",
        "backend": "lsh",
        "kind": "lsh_mutual_merge",
        "rows": 2 * rows,
        "repeats": max(repeats, 1),
        "mutual_pairs": len(pairs),
        "pair_digest": digest,
        "native_enabled": native_mod.get_kernel() is not None,
        "seconds": round(best, 4),
        "seconds_python_fallback": round(fallback["seconds"], 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if rows == 10_000:
        record["seconds_pre_engine_reference"] = _LSH_MERGE_10K_PRE_ENGINE_SECONDS
        record["speedup_vs_pre_engine"] = round(_LSH_MERGE_10K_PRE_ENGINE_SECONDS / best, 2)
    return record


def _pool_bench_tables(num_tables: int, rows: int) -> tuple[list, EmbeddingStore]:
    base = np.random.default_rng(0).normal(size=(rows, 64)).astype(np.float32)
    tables = []
    store = EmbeddingStore()
    for seed in range(num_tables):
        rng = np.random.default_rng(seed + 1)
        vectors = (base + rng.normal(scale=0.008, size=(rows, 64))).astype(np.float32)
        name = f"s{seed}"
        tables.append(
            ItemTable(
                vectors,
                np.zeros(rows, dtype=np.int32),
                np.arange(rows, dtype=np.int64),
                np.arange(rows + 1, dtype=np.int64),
                (name,),
            )
        )
        store.add_table(
            TableEmbeddings(name, [EntityRef(name, i) for i in range(rows)], vectors)
        )
    return tables, store


def run_process_pool_bench(num_tables: int = 8, rows: int = 1200, repeats: int = 3) -> dict:
    """Process-backend merge+prune: persistent pool vs fresh pool per call.

    ``reuse_pool=False`` restores the historical spin-up-per-``map``
    behaviour; the persistent pool keeps workers (and their warmed kernels
    and index caches) alive across every hierarchy level and the pruning
    fan-out. Outputs are asserted identical to the serial run either way.
    """
    tables, store = _pool_bench_tables(num_tables, rows)
    merging = MergingConfig(index="hnsw", m=0.5)
    pruning = PruningConfig(epsilon=1.0)

    def run(reuse_pool: bool):
        executor = ParallelExecutor(
            ParallelConfig(enabled=True, backend="process", max_workers=2, reuse_pool=reuse_pool)
        )
        try:
            best = None
            outputs = None
            for _ in range(max(repeats, 1)):
                started = time.perf_counter()
                merged, _ = hierarchical_merge_tables(
                    [table for table in tables], merging, executor=executor
                )
                pruned = prune_items(
                    merged.filter(merged.sizes >= 2).to_items(), store, pruning,
                    executor=executor,
                )
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best, outputs = elapsed, (merged, pruned)
            return best, outputs
        finally:
            executor.close()

    fresh_seconds, fresh_outputs = run(False)
    reuse_seconds, reuse_outputs = run(True)
    serial_merged, _ = hierarchical_merge_tables([table for table in tables], merging)
    serial_pruned = prune_items(
        serial_merged.filter(serial_merged.sizes >= 2).to_items(), store, pruning
    )
    for merged, pruned in (fresh_outputs, reuse_outputs):
        assert np.array_equal(merged.vectors, serial_merged.vectors)
        assert np.array_equal(merged.member_offsets, serial_merged.member_offsets)
        assert [item.members for item in pruned] == [item.members for item in serial_pruned]
    return {
        "dataset": f"process-pool-{num_tables}x{rows}",
        "profile": "tiny" if rows < 1000 else "bench",
        "backend": "process",
        "kind": "process_pool_merge_prune",
        "rows": num_tables * rows,
        "repeats": max(repeats, 1),
        "pruned_tuples": len(serial_pruned),
        "seconds_fresh_pool": round(fresh_seconds, 4),
        "seconds_persistent_pool": round(reuse_seconds, 4),
        "pool_reuse_speedup": round(fresh_seconds / max(reuse_seconds, 1e-9), 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_shm_pool_bench(num_tables: int = 8, rows: int = 1200, repeats: int = 3) -> dict:
    """Process-backend merge+prune: pickle dispatch vs shared-memory planes.

    Both runs use the same persistent pool configuration; the only variable
    is the transport — task ``ItemTable``s / member matrices pickled through
    the pool pipes versus shipped as zero-copy views over
    :class:`repro.store.plane.TaskPlane` segments. Outputs are asserted
    identical to the serial run for both (the shared-memory dispatch is
    bit-identical by construction).
    """
    tables, store = _pool_bench_tables(num_tables, rows)
    merging = MergingConfig(index="hnsw", m=0.5)
    pruning = PruningConfig(epsilon=1.0)

    def run(shared_memory: bool):
        executor = ParallelExecutor(
            ParallelConfig(
                enabled=True, backend="process", max_workers=2, shared_memory=shared_memory
            )
        )
        try:
            best = None
            outputs = None
            for _ in range(max(repeats, 1)):
                started = time.perf_counter()
                merged, _ = hierarchical_merge_tables(
                    [table for table in tables], merging, executor=executor
                )
                pruned = prune_items(
                    merged.filter(merged.sizes >= 2).to_items(), store, pruning,
                    executor=executor,
                )
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best, outputs = elapsed, (merged, pruned)
            return best, outputs
        finally:
            executor.close()

    pickle_seconds, pickle_outputs = run(False)
    shm_seconds, shm_outputs = run(True)
    serial_merged, _ = hierarchical_merge_tables([table for table in tables], merging)
    serial_pruned = prune_items(
        serial_merged.filter(serial_merged.sizes >= 2).to_items(), store, pruning
    )
    for merged, pruned in (pickle_outputs, shm_outputs):
        assert np.array_equal(merged.vectors, serial_merged.vectors)
        assert np.array_equal(merged.member_offsets, serial_merged.member_offsets)
        assert [item.members for item in pruned] == [item.members for item in serial_pruned]
    return {
        "dataset": f"shm-pool-{num_tables}x{rows}",
        "profile": "tiny" if rows < 1000 else "bench",
        "backend": "process",
        "kind": "shm_pool_merge_prune",
        "rows": num_tables * rows,
        "repeats": max(repeats, 1),
        "pruned_tuples": len(serial_pruned),
        "seconds_pickle_dispatch": round(pickle_seconds, 4),
        "seconds_shared_memory_dispatch": round(shm_seconds, 4),
        "shm_dispatch_speedup": round(pickle_seconds / max(shm_seconds, 1e-9), 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_plane_transport_bench(rows: int = 30_000, dim: int = 384, repeats: int = 3) -> dict:
    """Raw transport cost of one ItemTable: pickle round trip vs plane round trip.

    Isolates the serialization tax the shared-memory plane removes from the
    pipeline noise: ``pickle.dumps`` + ``loads`` copies every byte twice
    (serialize, deserialize), while the plane writes once into the segment
    and the "worker" side reconstructs zero-copy views. Measured in-process
    (no pool), so the numbers are pure transport.
    """
    import pickle

    from repro.store import codecs as store_codecs
    from repro.store import plane as plane_mod

    rng = np.random.default_rng(1)
    table = ItemTable(
        rng.normal(size=(rows, dim)).astype(np.float32),
        np.zeros(rows, dtype=np.int32),
        np.arange(rows, dtype=np.int64),
        np.arange(rows + 1, dtype=np.int64),
        ("s0",),
    )
    payload_bytes = sum(
        a.nbytes for a in (table.vectors, table.member_sources, table.member_indices, table.member_offsets)
    )

    def pickle_roundtrip():
        blob = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        return pickle.loads(blob)

    def plane_roundtrip():
        meta, arrays = store_codecs.item_table_state(table)
        meta = dict(meta)
        meta["__arrays__"] = list(arrays)
        task_plane = plane_mod.TaskPlane([arrays], [meta])
        try:
            reader = plane_mod.worker_plane(task_plane.name)
            loaded = store_codecs.item_table_from_state(
                meta, plane_mod.task_arrays(reader, 0, meta["__arrays__"])
            )
            assert loaded.vectors.shape == table.vectors.shape
            del loaded, reader  # release the zero-copy views before closing
        finally:
            # Retire the in-process "worker" attachment before unlinking.
            plane_mod.retire_worker_attachments()
            task_plane.close()

    def best_of(function):
        best = None
        for _ in range(max(repeats, 1)):
            started = time.perf_counter()
            function()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best

    pickle_seconds = best_of(pickle_roundtrip)
    plane_seconds = best_of(plane_roundtrip)
    return {
        "dataset": f"plane-transport-{rows}x{dim}",
        "profile": "tiny" if rows < 10_000 else "bench",
        "backend": "process",
        "kind": "plane_transport",
        "rows": rows,
        "repeats": max(repeats, 1),
        "payload_mb": round(payload_bytes / 1e6, 1),
        "seconds_pickle_roundtrip": round(pickle_seconds, 4),
        "seconds_plane_roundtrip": round(plane_seconds, 4),
        "plane_speedup": round(pickle_seconds / max(plane_seconds, 1e-9), 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_lsh_dedup_bench(rows: int = 10_000, repeats: int = 3) -> dict:
    """LSH candidate dedup: in-place numpy sort vs the native radix kernel.

    Captures the real (pre-dedup) candidate key stream an LSH query batch
    produces on the twin-cloud workload, then times both dedup paths on
    fresh copies (best of N) and asserts their outputs identical. Also times
    the full query batch so the record carries the dedup share the ROADMAP
    flagged (~40% of LSH query time on the numpy path).
    """
    from repro.ann import engine
    from repro.ann import native as native_mod
    from repro.ann.lsh import LSHIndex

    rng = np.random.default_rng(42)
    left = rng.normal(size=(rows, 64)).astype(np.float32)
    right = left[rng.permutation(rows)] + rng.normal(scale=0.01, size=(rows, 64)).astype(np.float32)
    index = LSHIndex(seed=0).build(left)
    keys = index._candidate_keys(right)
    assert keys is not None and keys.size > 0

    def best_of(function):
        best = None
        result = None
        for _ in range(max(repeats, 1)):
            fresh = keys.copy()
            started = time.perf_counter()
            result = function(fresh)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best, result

    sort_seconds, sort_result = best_of(
        lambda fresh: engine.dedup_sorted_keys(fresh, use_native=False)
    )
    native_enabled = native_mod.get_kernel() is not None
    if native_enabled:
        # Force the kernel so the record genuinely compares both
        # implementations; auto mode picks the winner per machine
        # (calibrated once per process) and the verdict rides alongside.
        radix_seconds, radix_result = best_of(
            lambda fresh: engine.dedup_sorted_keys(fresh, use_native=True)
        )
        assert np.array_equal(sort_result, radix_result), "dedup outputs diverged"
    else:
        radix_seconds = None  # no kernel on this box: nothing to compare against
    auto_prefers_native = engine.dedup_native_preferred()
    auto_seconds = (
        min(sort_seconds, radix_seconds) if radix_seconds is not None else sort_seconds
    )
    query_started = time.perf_counter()
    index.query(right, 1)
    query_seconds = time.perf_counter() - query_started
    # What the same query batch would cost with the sort-based dedup: the
    # two paths differ only in the dedup step, so swap its time back in.
    sort_query_seconds = query_seconds - auto_seconds + sort_seconds
    return {
        "dataset": f"lsh-dedup-{rows}x2",
        "profile": "tiny" if rows < 10_000 else "bench",
        "backend": "lsh",
        "kind": "lsh_candidate_dedup",
        "rows": 2 * rows,
        "repeats": max(repeats, 1),
        "stream_keys": int(keys.shape[0]),
        "unique_keys": int(sort_result.shape[0]),
        "native_enabled": native_enabled,
        "auto_prefers_native": auto_prefers_native,
        "seconds_sort_dedup": round(sort_seconds, 4),
        "seconds_radix_dedup": None if radix_seconds is None else round(radix_seconds, 4),
        "dedup_speedup": (
            None if radix_seconds is None else round(sort_seconds / max(radix_seconds, 1e-9), 2)
        ),
        "seconds_full_query": round(query_seconds, 4),
        "query_delta_seconds": round(sort_seconds - auto_seconds, 4),
        "sort_dedup_share_of_query": round(sort_seconds / max(sort_query_seconds, 1e-9), 3),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def _encode_dataset_vectors(dataset_name: str, profile: str) -> np.ndarray:
    """All-table embedding matrix for a benchmark dataset (row-concatenated)."""
    from repro.core.representation import EntityRepresenter

    dataset = load_benchmark(dataset_name, profile=profile)
    config = paper_default_config(dataset_name)
    representer = EntityRepresenter(config.representation)
    representer.fit(dataset, dataset.schema)
    embeddings = representer.encode_dataset(dataset, dataset.schema)
    return np.ascontiguousarray(
        np.concatenate([embeddings[table.name].vectors for table in dataset.table_list()])
    )


_RERANK_SNIPPET = """\
import hashlib, json, sys, time
import numpy as np
sys.path.insert(0, {src!r})
from repro.ann import engine, native
from repro.ann.distances import PreparedVectors

vectors = np.load({vectors_path!r})
rng = np.random.default_rng(42)
num_queries = min(1500, vectors.shape[0])
queries = vectors[:num_queries] + rng.normal(
    scale=0.01, size=(num_queries, vectors.shape[1])
).astype(np.float32)
prepared = PreparedVectors(vectors, "cosine")
prepared_queries = prepared.prepare_queries(queries)
seg = min({segment}, vectors.shape[0])
picks = np.argsort(rng.random((num_queries, vectors.shape[0])), axis=1)[:, :seg]
candidates = np.ascontiguousarray(np.sort(picks, axis=1).astype(np.int64).reshape(-1))
offsets = np.arange(num_queries + 1, dtype=np.int64) * seg
best = None
for _ in range({repeats}):
    indices, distances = engine.alloc_topk(num_queries, 5)
    t0 = time.perf_counter()
    engine.rerank_csr(prepared, prepared_queries, candidates, offsets, 5,
                      indices, distances, use_native={use_native})
    el = time.perf_counter() - t0
    best = el if best is None or el < best else best
digest = hashlib.sha256(indices.tobytes() + distances.tobytes()).hexdigest()[:16]
print(json.dumps({{"seconds": best, "variant": native.kernel_variant(), "digest": digest}}))
"""


def run_kernel_rerank_bench(
    dataset_name: str = "music-200", profile: str = "tiny", repeats: int = 3, segment: int = 64
) -> dict:
    """Short-segment re-rank per kernel variant, plus the threaded-build timing.

    Times the same CSR re-rank workload (real ``dataset_name`` embeddings,
    ``segment``-row candidate lists — the shape the SIMD micro-kernels serve)
    in three subprocess legs: the ``REPRO_NATIVE=0`` numpy engine, the scalar
    C variant, and the AVX2 variant where the CPU supports it. Output digests
    are asserted identical across all legs — the variants are alternative
    implementations, never alternative results. The record also carries an
    HNSW build timing at ``kernel_threads`` 1 vs 2 with the graphs asserted
    byte-identical; on a single-core box the threaded number measures
    speculation overhead, not speedup (see ``threads_caveat``).
    """
    import tempfile

    from repro.ann import native as native_mod
    from repro.ann.hnsw import HNSWIndex
    from repro.ann.native import _cpu_supports_avx2

    vectors = _encode_dataset_vectors(dataset_name, profile)
    with tempfile.TemporaryDirectory() as tmp:
        vectors_path = os.path.join(tmp, "vectors.npy")
        np.save(vectors_path, vectors)

        def run_leg(use_native: str, extra_env: dict) -> dict:
            snippet = _RERANK_SNIPPET.format(
                src=_SRC_PATH,
                vectors_path=vectors_path,
                segment=segment,
                repeats=max(repeats, 1),
                use_native=use_native,
            )
            env = {**os.environ}
            env.pop("REPRO_NATIVE_VARIANT", None)
            env.update(extra_env)
            completed = subprocess.run(
                [sys.executable, "-c", snippet], capture_output=True, text=True, env=env, check=True
            )
            return json.loads(completed.stdout.strip().splitlines()[-1])

        python_leg = run_leg("False", {"REPRO_NATIVE": "0"})
        scalar_leg = run_leg("True", {"REPRO_NATIVE_VARIANT": "scalar"})
        assert scalar_leg["variant"] == "scalar", "scalar variant did not load"
        assert scalar_leg["digest"] == python_leg["digest"], "scalar re-rank diverged"
        avx2_leg = None
        if _cpu_supports_avx2():
            avx2_leg = run_leg("True", {"REPRO_NATIVE_VARIANT": "avx2"})
            if avx2_leg["variant"] != "avx2":
                avx2_leg = None  # honest fallback engaged (non-bit-equal AVX2 rejected)
            else:
                assert avx2_leg["digest"] == python_leg["digest"], "AVX2 re-rank diverged"

    # Threaded build: byte-identity asserted here, wall-clock recorded.
    def time_build(threads: int) -> tuple[float, bytes]:
        best = None
        state = None
        for _ in range(max(repeats, 1)):
            started = time.perf_counter()
            index = HNSWIndex("cosine", seed=0, kernel_threads=threads).build(vectors)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
            n = len(index._node_levels)
            state = b"".join(
                index._layer_neighbors[layer][:n].tobytes()
                for layer in range(len(index._layer_neighbors))
            )
        return best, state

    build_1, graph_1 = time_build(1)
    build_2, graph_2 = time_build(2)
    assert graph_1 == graph_2, "threaded build graph diverged"
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": "kernel",
        "kind": "kernel_rerank",
        "rows": int(vectors.shape[0]),
        "dim": int(vectors.shape[1]),
        "segment": segment,
        "repeats": max(repeats, 1),
        "native_enabled": native_mod.get_kernel() is not None,
        "default_variant": native_mod.kernel_variant(),
        "seconds_rerank_python": round(python_leg["seconds"], 4),
        "seconds_rerank_scalar": round(scalar_leg["seconds"], 4),
        "seconds_rerank_avx2": None if avx2_leg is None else round(avx2_leg["seconds"], 4),
        "rerank_digest": python_leg["digest"],
        "seconds_build_threads_1": round(build_1, 4),
        "seconds_build_threads_2": round(build_2, 4),
        "threads_caveat": (
            "single-core bench box: kernel_threads=2 measures speculation overhead, "
            "not speedup; graphs asserted byte-identical"
        ),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_quantized_scan_bench(
    dataset_name: str = "music-200", profile: str = "tiny", repeats: int = 3, k: int = 5
) -> dict:
    """Opt-in int8 coarse scan + exact re-rank vs the dense exact scan.

    Both paths answer the same top-``k`` queries over real ``dataset_name``
    embeddings (best of N each); neighbour ids are asserted identical
    (recall == 1 on this workload) with distances matching to float32
    round-off. The quantized path is never a default — this record tracks
    what the opt-in buys.
    """
    from repro.ann import native as native_mod
    from repro.ann.brute_force import BruteForceIndex

    vectors = _encode_dataset_vectors(dataset_name, profile)
    rng = np.random.default_rng(42)
    num_queries = min(2000, vectors.shape[0])
    queries = vectors[:num_queries] + rng.normal(
        scale=0.01, size=(num_queries, vectors.shape[1])
    ).astype(np.float32)

    exact = BruteForceIndex("cosine").build(vectors)
    quantized = BruteForceIndex("cosine", quantized_scan=True).build(vectors)

    def best_of(index) -> tuple[float, tuple]:
        best = None
        result = None
        for _ in range(max(repeats, 1)):
            started = time.perf_counter()
            result = index.query(queries, k)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best, result

    exact_seconds, (exact_idx, exact_dist) = best_of(exact)
    quant_seconds, (quant_idx, quant_dist) = best_of(quantized)
    assert np.array_equal(exact_idx, quant_idx), "quantized scan recall < 1"
    assert np.allclose(exact_dist, quant_dist, rtol=1e-6, atol=1e-6)
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": "brute-force-quantized",
        "kind": "quantized_scan",
        "rows": int(vectors.shape[0]),
        "dim": int(vectors.shape[1]),
        "num_queries": num_queries,
        "k": k,
        "repeats": max(repeats, 1),
        "native_enabled": native_mod.get_kernel() is not None,
        "recall_vs_exact": 1.0,
        "seconds_exact_scan": round(exact_seconds, 4),
        "seconds_quantized_scan": round(quant_seconds, 4),
        "quantized_speedup": round(exact_seconds / max(quant_seconds, 1e-9), 2),
        "note": "opt-in only (quantized_scan=True); single-core bench box",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_snapshot_delta_bench(
    dataset_name: str = "music-200",
    profile: str = "bench",
    *,
    appends: int = 2,
    repeats: int = 3,
) -> dict:
    """Delta-save vs full-save cost under rolling ``add_table`` ingest.

    Fits the incremental matcher on all but the last ``appends`` tables,
    writes the base snapshot, then folds the held-out tables in one at a
    time. At every step both save modes run against the *same* live state
    (best of N each): ``save_session_delta`` writes only the changed bytes
    as an append-only chain link, ``save_session`` rewrites everything. The
    matcher's recorded lineage is restored between trials so each delta is
    measured against the same parent.
    """
    import tempfile

    from repro.core.incremental import IncrementalMultiEM
    from repro.store import save_session
    from repro.store.session import save_session_delta

    dataset = load_benchmark(dataset_name, profile=profile)
    rows = sum(len(table) for table in dataset.table_list())
    names = sorted(dataset.tables)
    held_out = names[-appends:]
    matcher = IncrementalMultiEM(paper_default_config(dataset_name))
    matcher.fit(dataset.subset(names[:-appends], name=dataset.name))
    steps = []
    try:
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "s.snap")
            save_session(matcher, base_path)
            base_bytes = os.path.getsize(base_path)
            for depth, name in enumerate(held_out, start=1):
                matcher.add_table(dataset.tables[name])
                parent = dict(matcher._base)  # lineage to diff every trial against
                delta_path = os.path.join(tmp, f"s.snap.d{depth}")
                full_path = os.path.join(tmp, f"full{depth}.snap")
                delta_best = full_best = None
                for _ in range(max(repeats, 1)):
                    started = time.perf_counter()
                    save_session_delta(matcher, delta_path)
                    elapsed = time.perf_counter() - started
                    delta_best = elapsed if delta_best is None or elapsed < delta_best else delta_best
                    matcher._base = dict(parent)
                    started = time.perf_counter()
                    save_session(matcher, full_path)
                    elapsed = time.perf_counter() - started
                    full_best = elapsed if full_best is None or elapsed < full_best else full_best
                    matcher._base = dict(parent)
                delta_bytes = os.path.getsize(delta_path)
                full_bytes = os.path.getsize(full_path)
                steps.append(
                    {
                        "depth": depth,
                        "table": name,
                        "delta_bytes": delta_bytes,
                        "full_bytes": full_bytes,
                        "delta_over_full": round(delta_bytes / full_bytes, 3),
                        "seconds_delta_save": round(delta_best, 4),
                        "seconds_full_save": round(full_best, 4),
                    }
                )
                # Advance the lineage onto this delta for the next append.
                save_session_delta(matcher, delta_path)
    finally:
        matcher.close()
    tip = steps[-1]
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": "snapshot",
        "kind": "snapshot_delta_save",
        "rows": rows,
        "repeats": max(repeats, 1),
        "appended_tables": appends,
        "base_bytes": base_bytes,
        "steps": steps,
        "chain_bytes": base_bytes + sum(step["delta_bytes"] for step in steps),
        "delta_over_full_first_append": steps[0]["delta_over_full"],
        "delta_over_full_tip": tip["delta_over_full"],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def run_sharded_merge_bench(num_tables: int = 5, rows: int = 1200, repeats: int = 3) -> dict:
    """Sharded hierarchical merge at shards ∈ {1, 2, 4} vs the serial merge.

    Every sharded run is asserted byte-identical to the serial merge (the
    plane's whole contract), so what this record tracks is the *cost* of the
    decomposition: plan construction plus per-owner-group query fan-out and
    the boundary stitch. On a single-core box the sharded numbers are pure
    overhead — the decomposition buys a work-splitting boundary for
    multi-machine merges, not local speedup (see ``shards_caveat``).
    """
    from repro.shard import plan_from_item_tables, sharded_hierarchical_merge
    from repro.store.codecs import item_table_digest

    tables, _ = _pool_bench_tables(num_tables, rows)
    serial_config = MergingConfig(index="hnsw", m=0.5)

    def best_of(function):
        best = None
        result = None
        for _ in range(max(repeats, 1)):
            started = time.perf_counter()
            result = function()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best, result

    # One untimed pass first: kernel load + per-process calibration otherwise
    # land entirely on the serial leg and flatter the sharded numbers.
    hierarchical_merge_tables([table for table in tables], serial_config)
    serial_seconds, (serial_table, _) = best_of(
        lambda: hierarchical_merge_tables([table for table in tables], serial_config)
    )
    serial_digest = item_table_digest(serial_table)
    shard_legs = []
    for shards in (1, 2, 4):
        config = MergingConfig(index="hnsw", m=0.5, shards=max(shards, 2), shard_key="lsh")
        plan = plan_from_item_tables([table for table in tables], config)
        if shards == 1:
            # Everything in one core group: the stitch machinery runs with
            # nothing to stitch — its fixed cost, isolated.
            owners = [np.zeros(len(table), dtype=np.int32) for table in tables]
        else:
            owners = plan.owners
        seconds, (merged, _, _) = best_of(
            lambda o=owners, c=config: sharded_hierarchical_merge(
                [table for table in tables], o, c
            )
        )
        assert item_table_digest(merged) == serial_digest, "sharded merge diverged"
        spill = int(sum(int((table_owners == config.shards).sum()) for table_owners in owners))
        shard_legs.append(
            {
                "shards": shards,
                "seconds": round(seconds, 4),
                "overhead_vs_serial": round(seconds / max(serial_seconds, 1e-9), 2),
                "spill_rows": spill,
            }
        )
    return {
        "dataset": f"sharded-merge-{num_tables}x{rows}",
        "profile": "tiny" if rows < 1000 else "bench",
        "backend": "hnsw",
        "kind": "sharded_merge",
        "rows": num_tables * rows,
        "repeats": max(repeats, 1),
        "shard_key": "lsh",
        "seconds_serial": round(serial_seconds, 4),
        "shard_legs": shard_legs,
        "item_table_digest": serial_digest[:16],
        "shards_caveat": (
            "single-core bench box: sharded legs measure decomposition overhead "
            "(plan + per-group fan-out + boundary stitch), not speedup; all legs "
            "asserted byte-identical to the serial merge"
        ),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_bench_record(record: dict, path: str = BENCH_JSON_PATH) -> None:
    """Append one record to the JSON trail (created on first write).

    Tiny-profile (smoke) records replace the previous record for the same
    workload instead of appending, so the trail tracks real bench runs and
    is not flooded by one smoke record per tier-1 invocation.

    The write is atomic (full serialization into a sibling temp file, then
    ``os.replace``): a bench run interrupted mid-write can no longer leave a
    truncated file behind and silently wipe the recorded perf trajectory —
    the previous trail survives untouched.
    """
    trail = {"description": "MultiEM per-module pipeline timings (Figure 5 shape)", "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
                trail = existing
        except (OSError, ValueError):
            pass
    if record.get("profile") == "tiny":
        key = (record.get("dataset"), record.get("profile"), record.get("backend"))
        trail["runs"] = [
            run
            for run in trail["runs"]
            if (run.get("dataset"), run.get("profile"), run.get("backend")) != key
        ]
    trail["runs"].append(record)
    from repro.store.format import atomic_output

    with atomic_output(path, "w") as handle:
        json.dump(trail, handle, indent=2)
        handle.write("\n")


def _format_record(record: dict) -> str:
    stages = record["stages"]
    front_end = record.get(
        "selection_plus_representation",
        round(stages["attribute_selection"] + stages["representation"], 4),
    )
    return (
        f"{record['dataset']} ({record['profile']}, {record['rows']} rows, "
        f"backend={record['backend']}): "
        f"S={stages['attribute_selection']:.2f}s R={stages['representation']:.2f}s "
        f"M={stages['merging']:.2f}s P={stages['pruning']:.2f}s "
        f"S+R={front_end:.2f}s M+P={record['merging_plus_pruning']:.2f}s "
        f"total={record['wall_total']:.2f}s "
        f"({record['num_tuples']} tuples)"
    )


def test_bench_pipeline_module_times(bench_profile):
    """Regenerate the end-to-end module-time breakdown and extend the JSON trail."""
    repeats = 3 if bench_profile != "tiny" else 1
    record = run_pipeline_bench("music-200", bench_profile, repeats=repeats)
    write_bench_record(record)
    print("\n  " + _format_record(record))
    assert record["num_tuples"] > 0
    assert all(value >= 0 for value in record["stages"].values())


def test_bench_backend_matrix(bench_profile):
    """LSH vs HNSW vs brute-force pipeline timings (the design ablation)."""
    repeats = 3 if bench_profile != "tiny" else 1
    for backend in ("brute-force", "hnsw", "lsh"):
        record = run_pipeline_bench("music-200", bench_profile, backend=backend, repeats=repeats)
        write_bench_record(record)
        print("\n  " + _format_record(record))
        assert record["num_tuples"] > 0


def test_bench_lsh_mutual_merge(bench_profile):
    """LSH-backed mutual merge at scale; native and numpy digests must agree."""
    rows = 2000 if bench_profile == "tiny" else 10_000
    record = run_lsh_merge_bench(rows=rows, repeats=3 if bench_profile != "tiny" else 1)
    write_bench_record(record)
    print(
        f"\n  lsh merge 2x{rows}: {record['seconds']:.2f}s native-mode, "
        f"{record['seconds_python_fallback']:.2f}s REPRO_NATIVE=0, "
        f"{record['mutual_pairs']} pairs (digest {record['pair_digest']})"
    )
    assert record["mutual_pairs"] > 0


def test_bench_process_pool_reuse(bench_profile):
    """Persistent process pool vs the historical fresh-pool-per-call mode."""
    rows = 400 if bench_profile == "tiny" else 1200
    tables = 6 if bench_profile == "tiny" else 8
    record = run_process_pool_bench(
        num_tables=tables, rows=rows, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    print(
        f"\n  process merge+prune over {tables}x{rows} rows: "
        f"fresh pools {record['seconds_fresh_pool']:.2f}s vs persistent "
        f"{record['seconds_persistent_pool']:.2f}s ({record['pool_reuse_speedup']:.2f}x)"
    )
    assert record["seconds_persistent_pool"] > 0


def test_bench_shm_pool_dispatch(bench_profile):
    """Pickle vs shared-memory process dispatch for merge+prune (best of N)."""
    rows = 400 if bench_profile == "tiny" else 1200
    tables = 6 if bench_profile == "tiny" else 8
    record = run_shm_pool_bench(
        num_tables=tables, rows=rows, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    print(
        f"\n  process merge+prune over {tables}x{rows} rows: "
        f"pickle {record['seconds_pickle_dispatch']:.2f}s vs shared-memory "
        f"{record['seconds_shared_memory_dispatch']:.2f}s "
        f"({record['shm_dispatch_speedup']:.2f}x)"
    )
    assert record["seconds_shared_memory_dispatch"] > 0


def test_bench_plane_transport(bench_profile):
    """Raw ItemTable transport: pickle round trip vs shared-memory plane."""
    rows = 4000 if bench_profile == "tiny" else 30_000
    record = run_plane_transport_bench(
        rows=rows, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    print(
        f"\n  plane transport of a {record['payload_mb']}MB table: "
        f"pickle {record['seconds_pickle_roundtrip']*1e3:.1f}ms vs plane "
        f"{record['seconds_plane_roundtrip']*1e3:.1f}ms ({record['plane_speedup']:.2f}x)"
    )
    assert record["seconds_plane_roundtrip"] > 0


def test_bench_snapshot_delta(bench_profile):
    """Delta-save bytes/time vs a full rewrite under rolling ingest."""
    record = run_snapshot_delta_bench(
        "music-200", bench_profile, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    for step in record["steps"]:
        print(
            f"\n  append {step['depth']} ({step['table']}): delta "
            f"{step['delta_bytes']} bytes / {step['seconds_delta_save']:.3f}s vs full "
            f"{step['full_bytes']} bytes / {step['seconds_full_save']:.3f}s "
            f"({step['delta_over_full']:.1%} of the rewrite)"
        )
    first = record["steps"][0]
    assert first["delta_bytes"] < first["full_bytes"]
    if bench_profile != "tiny":
        # The acceptance bar: one appended table must cost well under a
        # quarter of rewriting the whole state.
        assert first["delta_over_full"] < 0.25, (
            f"delta save wrote {first['delta_over_full']:.1%} of a full rewrite"
        )


def test_bench_lsh_dedup(bench_profile):
    """Sort-based vs native radix candidate dedup on a real LSH key stream."""
    rows = 2000 if bench_profile == "tiny" else 10_000
    record = run_lsh_dedup_bench(rows=rows, repeats=3 if bench_profile != "tiny" else 1)
    write_bench_record(record)
    radix = record["seconds_radix_dedup"]
    radix_part = (
        f"vs radix {radix*1e3:.1f}ms ({record['dedup_speedup']:.2f}x, "
        if radix is not None
        else "(no native kernel, "
    )
    print(
        f"\n  lsh dedup over {record['stream_keys']} keys "
        f"({record['unique_keys']} unique): sort {record['seconds_sort_dedup']*1e3:.1f}ms "
        f"{radix_part}query delta {record['query_delta_seconds']*1e3:.1f}ms)"
    )
    assert record["unique_keys"] > 0


def test_bench_kernel_rerank(bench_profile):
    """Per-variant short-segment re-rank + threaded HNSW build timings."""
    import shutil

    if shutil.which(os.environ.get("CC", "gcc")) is None:
        import pytest

        pytest.skip("kernel variant matrix needs a C compiler")
    record = run_kernel_rerank_bench("music-200", bench_profile, repeats=3)
    write_bench_record(record)
    avx2 = record["seconds_rerank_avx2"]
    avx2_part = f", avx2 {avx2*1e3:.1f}ms" if avx2 is not None else " (no AVX2)"
    print(
        f"\n  rerank over {record['rows']}x{record['dim']} (seg {record['segment']}): "
        f"python {record['seconds_rerank_python']*1e3:.1f}ms, "
        f"scalar {record['seconds_rerank_scalar']*1e3:.1f}ms{avx2_part}; "
        f"build 1t {record['seconds_build_threads_1']:.2f}s vs "
        f"2t {record['seconds_build_threads_2']:.2f}s (single-core box)"
    )
    assert record["seconds_rerank_scalar"] > 0


def test_bench_quantized_scan(bench_profile):
    """Opt-in quantized coarse scan vs the dense exact scan (recall == 1)."""
    record = run_quantized_scan_bench("music-200", bench_profile, repeats=3)
    write_bench_record(record)
    print(
        f"\n  quantized scan over {record['rows']}x{record['dim']} "
        f"({record['num_queries']} queries, k={record['k']}): exact "
        f"{record['seconds_exact_scan']:.3f}s vs quantized "
        f"{record['seconds_quantized_scan']:.3f}s "
        f"({record['quantized_speedup']:.2f}x, recall 1.0)"
    )
    assert record["recall_vs_exact"] == 1.0


def test_bench_sharded_merge(bench_profile):
    """Sharded vs serial hierarchical merge (byte-identical; overhead tracked)."""
    rows = 300 if bench_profile == "tiny" else 1200
    tables = 5 if bench_profile == "tiny" else 8
    record = run_sharded_merge_bench(
        num_tables=tables, rows=rows, repeats=3 if bench_profile != "tiny" else 1
    )
    write_bench_record(record)
    legs = ", ".join(
        f"{leg['shards']}sh {leg['seconds']:.2f}s ({leg['overhead_vs_serial']:.2f}x, "
        f"{leg['spill_rows']} spill)"
        for leg in record["shard_legs"]
    )
    print(
        f"\n  sharded merge over {tables}x{rows} rows: serial "
        f"{record['seconds_serial']:.2f}s vs {legs}"
    )
    assert all(leg["seconds"] > 0 for leg in record["shard_legs"])
