"""End-to-end per-module pipeline benchmark (Figure 5 shape), with a JSON trail.

``run_pipeline_bench`` times one full ``MultiEM.match`` (HNSW backend forced,
best of ``repeats``) and reports the S/R/M/P stage breakdown plus the
``merging + pruning`` aggregate this PR series optimizes.
``write_bench_record`` appends the record to ``BENCH_pipeline.json`` at the
repo root so the perf trajectory is tracked run over run.

Reference points on the bench box (music-200, ``bench`` profile, 11,070 rows,
best of 3): the PR-1 code ran 55.5 s end to end with 53.7 s in
merging + pruning; the flat-array merge/prune engines plus the native HNSW
kernel brought that to 8.2 s end to end with 6.5 s in merging + pruning
(~6.8x / ~8.2x). The PR-3 columnar text substrate then cut the front end
(attribute selection + representation) from 1.73 s to ~0.45 s (~3.7-4x,
tracked as ``selection_plus_representation``), landing at ~6.9 s end to end.
Predicted tuples stay byte-identical throughout (pinned by
``tests/core/test_pipeline_regression.py``).

Run at scale:    REPRO_BENCH_PROFILE=bench python -m pytest benchmarks/bench_pipeline.py -q -s
Smoke (tier-1):  python -m pytest benchmarks -q -m smoke
"""

import json
import os
import time

from repro.config import paper_default_config
from repro.core import MultiEM
from repro.data.generators import load_benchmark

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_pipeline.json")


def run_pipeline_bench(
    dataset_name: str = "music-200",
    profile: str = "bench",
    *,
    backend: str = "hnsw",
    repeats: int = 1,
) -> dict:
    """Time ``MultiEM.match`` end to end; returns the best trial's stage record."""
    dataset = load_benchmark(dataset_name, profile=profile)
    rows = sum(len(table) for table in dataset.table_list())
    config = paper_default_config(dataset_name).with_overrides(merging={"index": backend})
    best_total = None
    best_result = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        result = MultiEM(config).match(dataset)
        total = time.perf_counter() - started
        if best_total is None or total < best_total:
            best_total, best_result = total, result
    stages = best_result.timings.as_dict()
    return {
        "dataset": dataset_name,
        "profile": profile,
        "backend": backend,
        "rows": rows,
        "repeats": max(repeats, 1),
        "num_tuples": len(best_result.tuples),
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "merging_plus_pruning": round(stages["merging"] + stages["pruning"], 4),
        "selection_plus_representation": round(
            stages["attribute_selection"] + stages["representation"], 4
        ),
        "wall_total": round(best_total, 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_bench_record(record: dict, path: str = BENCH_JSON_PATH) -> None:
    """Append one record to the JSON trail (created on first write).

    Tiny-profile (smoke) records replace the previous record for the same
    workload instead of appending, so the trail tracks real bench runs and
    is not flooded by one smoke record per tier-1 invocation.
    """
    trail = {"description": "MultiEM per-module pipeline timings (Figure 5 shape)", "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
                trail = existing
        except (OSError, ValueError):
            pass
    if record.get("profile") == "tiny":
        key = (record.get("dataset"), record.get("profile"), record.get("backend"))
        trail["runs"] = [
            run
            for run in trail["runs"]
            if (run.get("dataset"), run.get("profile"), run.get("backend")) != key
        ]
    trail["runs"].append(record)
    with open(path, "w") as handle:
        json.dump(trail, handle, indent=2)
        handle.write("\n")


def _format_record(record: dict) -> str:
    stages = record["stages"]
    front_end = record.get(
        "selection_plus_representation",
        round(stages["attribute_selection"] + stages["representation"], 4),
    )
    return (
        f"{record['dataset']} ({record['profile']}, {record['rows']} rows, "
        f"backend={record['backend']}): "
        f"S={stages['attribute_selection']:.2f}s R={stages['representation']:.2f}s "
        f"M={stages['merging']:.2f}s P={stages['pruning']:.2f}s "
        f"S+R={front_end:.2f}s M+P={record['merging_plus_pruning']:.2f}s "
        f"total={record['wall_total']:.2f}s "
        f"({record['num_tuples']} tuples)"
    )


def test_bench_pipeline_module_times(bench_profile):
    """Regenerate the end-to-end module-time breakdown and extend the JSON trail."""
    repeats = 3 if bench_profile != "tiny" else 1
    record = run_pipeline_bench("music-200", bench_profile, repeats=repeats)
    write_bench_record(record)
    print("\n  " + _format_record(record))
    assert record["num_tuples"] > 0
    assert all(value >= 0 for value in record["stages"].values())
