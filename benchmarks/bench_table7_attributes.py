"""Table VII — attributes selected by Algorithm 1 on every dataset."""

from repro.evaluation import format_table
from repro.experiments import table7_selected_attributes


def test_table7_selected_attributes(benchmark, bench_profile, bench_datasets):
    """Regenerate Table VII; selection must keep the descriptive text attributes."""
    rows = benchmark(lambda: table7_selected_attributes(bench_datasets, profile=bench_profile))
    print("\n" + format_table(rows, ["dataset", "all attributes", "selected attributes"],
                              title=f"Table VII (profile={bench_profile})"))

    by_dataset = {row["dataset"]: row for row in rows}
    if "geo" in by_dataset:
        assert by_dataset["geo"]["selected attributes"] == "name"
    for music in ("music-20", "music-200", "music-2000"):
        if music in by_dataset:
            selected = by_dataset[music]["selected attributes"]
            assert "title" in selected and "artist" in selected and "album" in selected
            assert "id" not in selected.split(", ")
    if "shopee" in by_dataset:
        assert by_dataset["shopee"]["selected attributes"] == "title"
