"""Benchmark smoke checks: the ANN merging path at tiny scale.

These run inside tier-1 (the filename matches the default ``test_*`` pattern,
unlike the heavyweight ``bench_*`` modules) so an accidental performance
cliff in the ANN layer — e.g. falling back to per-call re-normalization or a
quadratic candidate scan — fails loudly instead of only showing up when
someone reruns the full benchmarks. Select them alone with
``python -m pytest benchmarks -q -m smoke``.
"""

import time

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, IndexCache, mutual_top_k

# Generous ceilings: the operations below take well under a second on any
# recent machine, so tripping these means an order-of-magnitude regression
# (or a hang), not noise.
MERGE_CEILING_SECONDS = 20.0
EXTEND_CEILING_SECONDS = 5.0


@pytest.fixture(scope="module")
def smoke_vectors() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    a = rng.normal(size=(600, 64)).astype(np.float32)
    b = a[rng.permutation(600)] + rng.normal(scale=0.01, size=(600, 64)).astype(np.float32)
    return a, b


@pytest.mark.smoke
def test_smoke_hnsw_merge_agrees_with_exact_and_is_fast(smoke_vectors):
    a, b = smoke_vectors
    started = time.perf_counter()
    approx = mutual_top_k(a, b, k=1, max_distance=0.3, backend="hnsw")
    elapsed = time.perf_counter() - started
    exact = mutual_top_k(a, b, k=1, max_distance=0.3, backend="brute-force")
    exact_pairs = {(p.left, p.right) for p in exact}
    approx_pairs = {(p.left, p.right) for p in approx}
    overlap = len(exact_pairs & approx_pairs) / max(len(exact_pairs), 1)
    assert overlap >= 0.95, f"HNSW recall collapsed: {overlap:.2%}"
    assert elapsed < MERGE_CEILING_SECONDS, f"HNSW merge path took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_index_cache_extend_beats_rebuild(smoke_vectors):
    a, _ = smoke_vectors
    cache = IndexCache(max_entries=2)
    cache.get_or_build(a, lambda: HNSWIndex(seed=0).build(a))
    tail = np.ascontiguousarray(a[:32] + np.float32(0.5))
    grown = np.concatenate([a, tail])
    started = time.perf_counter()
    extended = cache.get_or_build(grown, lambda: HNSWIndex(seed=0).build(grown))
    elapsed = time.perf_counter() - started
    assert cache.stats.prefix_hits == 1, "prefix reuse did not trigger"
    assert extended.size == len(grown)
    assert elapsed < EXTEND_CEILING_SECONDS, f"prefix extend took {elapsed:.1f}s"
    # Reuse must be exact: same results as a fresh build.
    reference = HNSWIndex(seed=0).build(grown)
    got, _ = extended.query(grown[:32], 3)
    want, _ = reference.query(grown[:32], 3)
    assert np.array_equal(got, want)


@pytest.mark.smoke
def test_smoke_pipeline_module_times():
    """Tiny end-to-end pipeline run; appends its timings to BENCH_pipeline.json.

    Keeps the per-module benchmark harness (bench_pipeline.py) exercised by
    tier-1 and catches order-of-magnitude pipeline regressions early.
    """
    from bench_pipeline import _format_record, run_pipeline_bench, write_bench_record

    started = time.perf_counter()
    record = run_pipeline_bench("music-20", "tiny")
    elapsed = time.perf_counter() - started
    write_bench_record(record)
    print("\n  " + _format_record(record))
    assert record["num_tuples"] > 0
    assert all(value >= 0 for value in record["stages"].values())
    assert elapsed < MERGE_CEILING_SECONDS, f"tiny pipeline took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_encoder_batch_fast_path_is_exercised():
    """A real pipeline run must flow through the columnar encoder fast path.

    Injects the encoder into MultiEM and checks its batch counters after the
    run: every encode (attribute selection *and* representation) must take
    the CSR token-table path — a silent fallback to per-text encoding would
    be an order-of-magnitude front-end regression at bench scale.
    """
    from repro.config import paper_default_config
    from repro.core import MultiEM
    from repro.data.generators import load_benchmark
    from repro.embedding import HashedNGramEncoder

    dataset = load_benchmark("music-20", profile="tiny")
    encoder = HashedNGramEncoder()
    config = paper_default_config("music-20").with_overrides(merging={"index": "hnsw"})
    started = time.perf_counter()
    result = MultiEM(config, encoder=encoder).match(dataset)
    elapsed = time.perf_counter() - started
    assert result.tuples, "pipeline produced no tuples"
    assert encoder.batch_encodes > 0, "columnar batch encode path never ran"
    assert encoder.tokens_pooled > 0, "CSR pooling kernel pooled no tokens"
    # Attribute selection must splice off the shared column token index: the
    # fast path encodes base + p shuffles without serializing texts, so the
    # batch counter covers at least (schema size + 1) selection passes plus
    # one representation pass per source table.
    expected_passes = len(dataset.schema) + 1 + len(dataset.table_list())
    assert encoder.batch_encodes >= expected_passes, (
        f"expected >= {expected_passes} batch passes, saw {encoder.batch_encodes}"
    )
    assert elapsed < MERGE_CEILING_SECONDS, f"tiny pipeline took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_brute_force_batched_query(smoke_vectors):
    a, b = smoke_vectors
    index = BruteForceIndex(batch_size=128).build(a)
    started = time.perf_counter()
    indices, distances = index.query(b, 5)
    elapsed = time.perf_counter() - started
    assert indices.shape == (len(b), 5)
    assert np.isfinite(distances[:, 0]).all()
    assert elapsed < EXTEND_CEILING_SECONDS, f"brute-force batch query took {elapsed:.1f}s"
