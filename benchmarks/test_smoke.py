"""Benchmark smoke checks: the ANN merging path at tiny scale.

These run inside tier-1 (the filename matches the default ``test_*`` pattern,
unlike the heavyweight ``bench_*`` modules) so an accidental performance
cliff in the ANN layer — e.g. falling back to per-call re-normalization or a
quadratic candidate scan — fails loudly instead of only showing up when
someone reruns the full benchmarks. Select them alone with
``python -m pytest benchmarks -q -m smoke``.
"""

import os
import shutil
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, IndexCache, mutual_top_k

# Generous ceilings: the operations below take well under a second on any
# recent machine, so tripping these means an order-of-magnitude regression
# (or a hang), not noise.
MERGE_CEILING_SECONDS = 20.0
EXTEND_CEILING_SECONDS = 5.0


@pytest.fixture(scope="module")
def smoke_vectors() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0)
    a = rng.normal(size=(600, 64)).astype(np.float32)
    b = a[rng.permutation(600)] + rng.normal(scale=0.01, size=(600, 64)).astype(np.float32)
    return a, b


@pytest.mark.smoke
def test_smoke_hnsw_merge_agrees_with_exact_and_is_fast(smoke_vectors):
    a, b = smoke_vectors
    started = time.perf_counter()
    approx = mutual_top_k(a, b, k=1, max_distance=0.3, backend="hnsw")
    elapsed = time.perf_counter() - started
    exact = mutual_top_k(a, b, k=1, max_distance=0.3, backend="brute-force")
    exact_pairs = {(p.left, p.right) for p in exact}
    approx_pairs = {(p.left, p.right) for p in approx}
    overlap = len(exact_pairs & approx_pairs) / max(len(exact_pairs), 1)
    assert overlap >= 0.95, f"HNSW recall collapsed: {overlap:.2%}"
    assert elapsed < MERGE_CEILING_SECONDS, f"HNSW merge path took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_index_cache_extend_beats_rebuild(smoke_vectors):
    a, _ = smoke_vectors
    cache = IndexCache(max_entries=2)
    cache.get_or_build(a, lambda: HNSWIndex(seed=0).build(a))
    tail = np.ascontiguousarray(a[:32] + np.float32(0.5))
    grown = np.concatenate([a, tail])
    started = time.perf_counter()
    extended = cache.get_or_build(grown, lambda: HNSWIndex(seed=0).build(grown))
    elapsed = time.perf_counter() - started
    assert cache.stats.prefix_hits == 1, "prefix reuse did not trigger"
    assert extended.size == len(grown)
    assert elapsed < EXTEND_CEILING_SECONDS, f"prefix extend took {elapsed:.1f}s"
    # Reuse must be exact: same results as a fresh build.
    reference = HNSWIndex(seed=0).build(grown)
    got, _ = extended.query(grown[:32], 3)
    want, _ = reference.query(grown[:32], 3)
    assert np.array_equal(got, want)


@pytest.mark.smoke
def test_smoke_pipeline_module_times():
    """Tiny end-to-end pipeline run; appends its timings to BENCH_pipeline.json.

    Keeps the per-module benchmark harness (bench_pipeline.py) exercised by
    tier-1 and catches order-of-magnitude pipeline regressions early.
    """
    from bench_pipeline import _format_record, run_pipeline_bench, write_bench_record

    started = time.perf_counter()
    record = run_pipeline_bench("music-20", "tiny")
    elapsed = time.perf_counter() - started
    write_bench_record(record)
    print("\n  " + _format_record(record))
    assert record["num_tuples"] > 0
    assert all(value >= 0 for value in record["stages"].values())
    assert elapsed < MERGE_CEILING_SECONDS, f"tiny pipeline took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_encoder_batch_fast_path_is_exercised():
    """A real pipeline run must flow through the columnar encoder fast path.

    Injects the encoder into MultiEM and checks its batch counters after the
    run: every encode (attribute selection *and* representation) must take
    the CSR token-table path — a silent fallback to per-text encoding would
    be an order-of-magnitude front-end regression at bench scale.
    """
    from repro.config import paper_default_config
    from repro.core import MultiEM
    from repro.data.generators import load_benchmark
    from repro.embedding import HashedNGramEncoder

    dataset = load_benchmark("music-20", profile="tiny")
    encoder = HashedNGramEncoder()
    config = paper_default_config("music-20").with_overrides(merging={"index": "hnsw"})
    started = time.perf_counter()
    result = MultiEM(config, encoder=encoder).match(dataset)
    elapsed = time.perf_counter() - started
    assert result.tuples, "pipeline produced no tuples"
    assert encoder.batch_encodes > 0, "columnar batch encode path never ran"
    assert encoder.tokens_pooled > 0, "CSR pooling kernel pooled no tokens"
    # Attribute selection must splice off the shared column token index: the
    # fast path encodes base + p shuffles without serializing texts, so the
    # batch counter covers at least (schema size + 1) selection passes plus
    # one representation pass per source table.
    expected_passes = len(dataset.schema) + 1 + len(dataset.table_list())
    assert encoder.batch_encodes >= expected_passes, (
        f"expected >= {expected_passes} batch passes, saw {encoder.batch_encodes}"
    )
    assert elapsed < MERGE_CEILING_SECONDS, f"tiny pipeline took {elapsed:.1f}s"


_REQUIRE_SNIPPET = """\
import numpy as np
from repro.ann import HNSWIndex, LSHIndex, mutual_top_k
from repro.ann import native

assert native.get_kernel() is not None  # require-mode would have raised already
rng = np.random.default_rng(0)
vectors = rng.normal(size=(300, 32)).astype(np.float32)
queries = vectors[:40] + rng.normal(scale=0.01, size=(40, 32)).astype(np.float32)
hnsw_idx, _ = HNSWIndex(seed=0).build(vectors).query(queries, 3)
lsh_idx, _ = LSHIndex(seed=0).build(vectors).query(queries, 3)
assert (hnsw_idx[:, 0] >= 0).all() and (lsh_idx >= 0).any()
pairs = mutual_top_k(vectors[:150], vectors[150:], k=1, max_distance=0.5, backend="lsh")
print("REQUIRE-OK", len(pairs))
"""


@pytest.mark.smoke
def test_smoke_native_require_leg():
    """``REPRO_NATIVE=require`` end-to-end: the kernel must engage for both backends.

    Runs a subprocess so the strict mode is exercised from a cold import:
    any compile, BLAS-resolution, or byte-identity regression fails loudly
    there instead of silently costing the native speedup. Skips — with the
    concrete reason — only for genuine environment limitations (no C
    compiler, no resolvable wheel-bundled ILP64 OpenBLAS, or an explicit
    ``REPRO_NATIVE`` opt-out in the outer environment).
    """
    if os.environ.get("REPRO_NATIVE", "").lower() in ("0", "off", "false"):
        pytest.skip("native kernel explicitly disabled via REPRO_NATIVE")
    if shutil.which(os.environ.get("CC", "gcc")) is None:
        pytest.skip("REPRO_NATIVE=require needs a C compiler; none on this machine")
    from repro.ann import native

    if native.get_kernel() is None:
        pytest.skip(f"environment limitation: {native.disabled_reason}")
    src_root = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = {**os.environ, "REPRO_NATIVE": "require"}
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _REQUIRE_SNIPPET], capture_output=True, text=True, env=env
    )
    assert completed.returncode == 0, (
        f"REPRO_NATIVE=require leg failed:\n{completed.stderr[-2000:]}"
    )
    assert "REQUIRE-OK" in completed.stdout


@pytest.mark.smoke
def test_smoke_process_pool_backend_roundtrip():
    """The process backend must work end to end (it used to crash on pickling).

    A tiny two-level merge through a persistent process pool, checked
    bit-identical against the serial run.
    """
    from repro.config import MergingConfig, ParallelConfig
    from repro.core.merging import ItemTable, hierarchical_merge_tables
    from repro.core.parallel import ParallelExecutor

    tables = []
    for seed in range(4):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(60, 16)).astype(np.float32)
        tables.append(
            ItemTable(
                vectors,
                np.zeros(60, dtype=np.int32),
                np.arange(60, dtype=np.int64),
                np.arange(61, dtype=np.int64),
                (f"s{seed}",),
            )
        )
    config = MergingConfig(index="brute-force", m=0.8)
    serial, _ = hierarchical_merge_tables([t for t in tables], config)
    started = time.perf_counter()
    with ParallelExecutor(ParallelConfig(enabled=True, backend="process", max_workers=2)) as ex:
        merged, _ = hierarchical_merge_tables([t for t in tables], config, executor=ex)
    elapsed = time.perf_counter() - started
    assert np.array_equal(merged.vectors, serial.vectors)
    assert np.array_equal(merged.member_offsets, serial.member_offsets)
    assert elapsed < MERGE_CEILING_SECONDS, f"process-pool merge took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_shared_memory_pool_roundtrip():
    """Merge+prune through the shared-memory process pool, bit-equal to serial.

    The shared-memory dispatch ships task arrays as zero-copy views over
    TaskPlane segments instead of pickling them; this tier-1 leg pins that
    the transport swap changes nothing — merged vectors, member lists, and
    pruned survivor tuples are byte-identical to the serial run — and that
    no segment outlives the run.
    """
    from repro.config import MergingConfig, ParallelConfig, PruningConfig
    from repro.core.merging import ItemTable, hierarchical_merge_tables
    from repro.core.parallel import ParallelExecutor
    from repro.core.pruning import prune_item_table
    from repro.core.representation import EmbeddingStore, TableEmbeddings
    from repro.data.entity import EntityRef
    from repro.store import plane

    if not plane.available():
        pytest.skip("POSIX shared memory unavailable on this platform")
    base = np.random.default_rng(0).normal(size=(60, 16)).astype(np.float32)
    tables, store = [], EmbeddingStore()
    for seed in range(4):
        rng = np.random.default_rng(seed + 1)
        vectors = (base + rng.normal(scale=0.01, size=(60, 16))).astype(np.float32)
        name = f"s{seed}"
        tables.append(
            ItemTable(
                vectors,
                np.zeros(60, dtype=np.int32),
                np.arange(60, dtype=np.int64),
                np.arange(61, dtype=np.int64),
                (name,),
            )
        )
        store.add_table(TableEmbeddings(name, [EntityRef(name, i) for i in range(60)], vectors))
    merging = MergingConfig(index="brute-force", m=0.5)
    pruning = PruningConfig(epsilon=1.0)
    serial_merged, _ = hierarchical_merge_tables([t for t in tables], merging)
    serial_pruned = prune_item_table(serial_merged, store, pruning)
    started = time.perf_counter()
    with ParallelExecutor(
        ParallelConfig(enabled=True, backend="process", max_workers=2, shared_memory=True)
    ) as ex:
        assert ex.uses_shared_memory
        merged, _ = hierarchical_merge_tables([t for t in tables], merging, executor=ex)
        pruned = prune_item_table(merged, store, pruning, executor=ex)
    elapsed = time.perf_counter() - started
    assert np.array_equal(merged.vectors, serial_merged.vectors)
    assert np.array_equal(merged.member_offsets, serial_merged.member_offsets)
    assert np.array_equal(merged.member_sources, serial_merged.member_sources)
    assert np.array_equal(merged.member_indices, serial_merged.member_indices)
    assert [item.members for item in pruned] == [item.members for item in serial_pruned]
    assert all(
        a.vector.tobytes() == b.vector.tobytes() for a, b in zip(pruned, serial_pruned)
    )
    assert elapsed < MERGE_CEILING_SECONDS, f"shared-memory merge+prune took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_snapshot_chain_roundtrip(tmp_path):
    """save → append → compact → load: every path lands on the same digests.

    The tier-1 guarantee for the delta-chain store: a rolling-ingest delta
    and its compaction both reconstruct exactly the state the live matcher
    held, and the delta genuinely writes less than the base it extends.
    """
    from repro.config import paper_default_config
    from repro.core.incremental import IncrementalMultiEM
    from repro.data.generators import load_benchmark
    from repro.store import compact_session, load_matcher
    from repro.store.codecs import embedding_store_digest, item_table_digest

    dataset = load_benchmark("music-20", profile="tiny")
    names = sorted(dataset.tables)
    matcher = IncrementalMultiEM(paper_default_config("music-20"))
    started = time.perf_counter()
    matcher.fit(dataset.subset(names[:-1], name=dataset.name))
    base = tmp_path / "s.snap"
    matcher.save(base)
    matcher.add_table(dataset.tables[names[-1]])
    delta = tmp_path / "s.snap.d1"
    matcher.save(delta)  # auto mode: a base exists, so this is a chain delta
    want_table = item_table_digest(matcher.integrated_table)
    want_store = embedding_store_digest(matcher._store)
    matcher.close()
    compacted = tmp_path / "compacted.snap"
    compact_session(delta, compacted)
    assert delta.stat().st_size < base.stat().st_size, "delta did not save bytes"
    for path in (delta, compacted):
        loaded = load_matcher(path)
        assert item_table_digest(loaded.integrated_table) == want_table
        assert embedding_store_digest(loaded._store) == want_store
        loaded.close()
    elapsed = time.perf_counter() - started
    assert elapsed < MERGE_CEILING_SECONDS, f"chain round trip took {elapsed:.1f}s"


@pytest.mark.smoke
def test_smoke_brute_force_batched_query(smoke_vectors):
    a, b = smoke_vectors
    index = BruteForceIndex(batch_size=128).build(a)
    started = time.perf_counter()
    indices, distances = index.query(b, 5)
    elapsed = time.perf_counter() - started
    assert indices.shape == (len(b), 5)
    assert np.isfinite(distances[:, 0]).all()
    assert elapsed < EXTEND_CEILING_SECONDS, f"brute-force batch query took {elapsed:.1f}s"


_MATRIX_SNIPPET = """\
import hashlib
import numpy as np
from repro.ann import HNSWIndex
from repro.ann import native

rng = np.random.default_rng(7)
vectors = rng.standard_normal((250, 36)).astype(np.float32)
queries = rng.standard_normal((25, 36)).astype(np.float32)
index = HNSWIndex(seed=4, kernel_threads={threads}).build(vectors[:180])
index.extend(vectors[180:])
idx, dist = index.query(queries, 4)
digest = hashlib.blake2b(digest_size=16)
for layer in range(len(index._layer_neighbors)):
    digest.update(index._layer_neighbors[layer][:250].tobytes())
    digest.update(index._layer_dists[layer][:250].tobytes())
digest.update(idx.tobytes())
digest.update(dist.tobytes())
print("VARIANT", native.kernel_variant())
print("DIGEST", digest.hexdigest())
"""


@pytest.mark.smoke
def test_smoke_kernel_compile_matrix():
    """One graph digest across every kernel tier: off / scalar / AVX2 / threaded.

    Each leg runs in a subprocess with its own ``REPRO_NATIVE`` /
    ``REPRO_NATIVE_VARIANT`` environment, builds + extends + queries the same
    HNSW index, and prints a digest over the full graph and query output. All
    legs must agree byte-for-byte — the kernel tiers are alternative
    *implementations*, never alternative *results*. Legs the environment
    can't provide (no compiler, no AVX2 CPU) are skipped with the reason.
    """
    src_root = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    base_env = {**os.environ}
    base_env["PYTHONPATH"] = src_root + os.pathsep + base_env.get("PYTHONPATH", "")
    base_env.pop("REPRO_NATIVE", None)
    base_env.pop("REPRO_NATIVE_VARIANT", None)

    legs = [("python-fallback", {"REPRO_NATIVE": "0"}, 1)]
    have_compiler = shutil.which(os.environ.get("CC", "gcc")) is not None
    native_disabled = os.environ.get("REPRO_NATIVE", "").lower() in ("0", "off", "false")
    if have_compiler and not native_disabled:
        legs.append(("native-scalar", {"REPRO_NATIVE_VARIANT": "scalar"}, 1))
        legs.append(("native-threads-2", {"REPRO_NATIVE_VARIANT": "scalar"}, 2))
        from repro.ann.native import _cpu_supports_avx2

        if _cpu_supports_avx2():
            legs.append(("native-avx2", {"REPRO_NATIVE_VARIANT": "avx2"}, 1))
        else:
            print("\n  skipping native-avx2 leg: CPU lacks AVX2+FMA3")
    else:
        reason = "native kernel disabled via REPRO_NATIVE" if native_disabled else "no C compiler"
        pytest.skip(f"only the python-fallback leg is runnable here: {reason}")

    digests: dict[str, str] = {}
    for name, extra_env, threads in legs:
        env = {**base_env, **extra_env}
        completed = subprocess.run(
            [sys.executable, "-c", _MATRIX_SNIPPET.format(threads=threads)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, f"{name} leg failed:\n{completed.stderr[-2000:]}"
        digests[name] = completed.stdout.strip().splitlines()[-1]
        if name == "native-scalar":
            assert "VARIANT scalar" in completed.stdout
        if name == "native-avx2":
            assert "VARIANT avx2" in completed.stdout
        if name == "python-fallback":
            assert "VARIANT None" in completed.stdout
    reference = digests["python-fallback"]
    for name, digest in digests.items():
        assert digest == reference, f"{name} leg diverged from the python fallback"
