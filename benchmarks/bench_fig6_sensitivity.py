"""Figure 6 — sensitivity to γ (a), merge order (b), m (c, d), and ε (e, f)."""

from repro.evaluation import format_table
from repro.experiments import figure6_epsilon, figure6_gamma, figure6_m, figure6_seed


def test_figure6a_gamma(benchmark, bench_profile, bench_datasets):
    rows = benchmark(lambda: figure6_gamma(bench_datasets[:2], profile=bench_profile))
    print("\n" + format_table(rows, title=f"Figure 6(a): gamma sweep (profile={bench_profile})"))
    assert all(0 <= row["F1"] <= 100 for row in rows)


def test_figure6b_merge_order(benchmark, bench_profile, bench_datasets):
    rows = benchmark(lambda: figure6_seed(bench_datasets[:2], profile=bench_profile))
    print("\n" + format_table(rows, title=f"Figure 6(b): seed sweep (profile={bench_profile})"))
    # Merge order should not change the result wildly (paper: avg variation 1.4 F1).
    for dataset in {row["dataset"] for row in rows}:
        f1_values = [row["F1"] for row in rows if row["dataset"] == dataset]
        assert max(f1_values) - min(f1_values) < 30


def test_figure6cd_m(benchmark, bench_profile, bench_datasets):
    rows = benchmark(lambda: figure6_m(bench_datasets[:2], profile=bench_profile))
    print("\n" + format_table(rows, title=f"Figure 6(c,d): m sweep (profile={bench_profile})"))
    assert {row["m"] for row in rows} >= {0.35, 0.5}
    assert all(row["normalized time"] > 0 for row in rows)


def test_figure6ef_epsilon(benchmark, bench_profile, bench_datasets):
    rows = benchmark(lambda: figure6_epsilon(bench_datasets[:2], profile=bench_profile))
    print("\n" + format_table(rows, title=f"Figure 6(e,f): epsilon sweep (profile={bench_profile})"))
    # The paper finds overall matching performance stable as epsilon varies.
    for dataset in {row["dataset"] for row in rows}:
        f1_values = [row["F1"] for row in rows if row["dataset"] == dataset]
        assert max(f1_values) - min(f1_values) < 40
