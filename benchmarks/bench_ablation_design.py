"""Design-choice ablations listed in DESIGN.md (beyond the paper's own ablations)."""

from repro.evaluation import format_table
from repro.experiments import (
    ablation_index_backend,
    ablation_mutual_vs_directed,
    ablation_pruning_strategy,
    ablation_representative,
)


def test_ablation_mutual_vs_directed(benchmark, bench_profile, bench_datasets):
    """Mutual top-K must not be less precise than one-directional top-K."""
    rows = benchmark(lambda: ablation_mutual_vs_directed(bench_datasets[:2], profile=bench_profile))
    print("\n" + format_table(rows, title="Ablation: mutual vs directed top-K"))
    for row in rows:
        assert row["mutual precision"] >= row["directed precision"]


def test_ablation_index_backend(benchmark, bench_profile, bench_datasets):
    """Exact, HNSW, and LSH backends inside the merging stage."""
    rows = benchmark(lambda: ablation_index_backend(bench_datasets[:1], profile=bench_profile))
    print("\n" + format_table(rows, title="Ablation: ANN backend"))
    by_backend = {row["index"]: row for row in rows}
    # The graph index must stay within a reasonable band of the exact search.
    assert by_backend["hnsw"]["pair-F1"] >= by_backend["brute-force"]["pair-F1"] - 15


def test_ablation_representative_vector(benchmark, bench_profile, bench_datasets):
    """Mean vs medoid representatives for merged items."""
    rows = benchmark(lambda: ablation_representative(bench_datasets[:1], profile=bench_profile))
    print("\n" + format_table(rows, title="Ablation: merged-item representative"))
    assert {row["representative"] for row in rows} == {"mean", "medoid"}


def test_ablation_pruning_strategy(benchmark, bench_profile, bench_datasets):
    """Density pruning vs no pruning vs centroid-distance pruning."""
    rows = benchmark(lambda: ablation_pruning_strategy(bench_datasets[:1], profile=bench_profile))
    print("\n" + format_table(rows, title="Ablation: pruning strategy"))
    assert {row["pruning"] for row in rows} == {"density", "none", "centroid"}
