"""Figure 2 / Lemmas 1-3 — pairwise vs chain vs hierarchical merging cost."""

from repro.evaluation import format_table
from repro.experiments import figure2_strategy_scaling


def test_figure2_strategy_scaling(benchmark, bench_profile):
    """Time the three multi-table strategies while the number of sources grows."""
    entities = 120 if bench_profile == "tiny" else 300
    rows = benchmark(
        lambda: figure2_strategy_scaling(num_sources_values=(2, 4, 8), entities_per_source=entities)
    )
    print("\n" + format_table(rows, title="Figure 2 / Lemmas 1-3: strategy scaling"))

    assert [row["sources"] for row in rows] == [2, 4, 8]
    # Pairwise matching cost must grow faster than hierarchical merging cost
    # as the number of sources increases (quadratic vs near-linear in S).
    first, last = rows[0], rows[-1]
    pairwise_growth = last["pairwise (s)"] / max(first["pairwise (s)"], 1e-6)
    hierarchical_growth = last["hierarchical (s)"] / max(first["hierarchical (s)"], 1e-6)
    assert pairwise_growth > hierarchical_growth * 0.8
