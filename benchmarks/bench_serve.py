"""Load generator for the match-serving plane (`repro.serve`).

Boots the real server process (``python -m repro.cli serve``) over a fitted
music-20 snapshot and drives closed-loop query load at concurrency
k ∈ {1, 8, 64} — once with request coalescing on (the default windows) and
once with ``--no-coalesce`` — recording throughput and p50/p99 latency per
leg, best of 3 repeats, into ``BENCH_pipeline.json``.

What the record shows: at k=1 the two modes are equivalent (a batch of one),
while under concurrency coalescing folds the in-flight requests into one
batched encode + one batched index query per window, so throughput climbs
and tail latency stays bounded instead of queueing per-request dispatch.

Run directly (``python benchmarks/bench_serve.py``) or through the pytest
harness (``python -m pytest benchmarks/bench_serve.py -q -s``);
``REPRO_BENCH_PROFILE=bench`` scales the dataset and request volume up.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC_ROOT = os.path.join(os.path.dirname(_HERE), "src")
if _SRC_ROOT not in sys.path:  # pragma: no cover - direct-run convenience
    sys.path.insert(0, _SRC_ROOT)

from bench_pipeline import write_bench_record  # noqa: E402

CONCURRENCIES = (1, 8, 64)


# ----------------------------------------------------------------- load loop
async def _http_post(port: int, path: str, doc: dict) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(doc).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    return int(head_bytes.split(b" ")[1]), payload


async def _closed_loop(port: int, texts: list[str], concurrency: int, total: int) -> dict:
    """``concurrency`` clients, each issuing sequential queries, ``total`` in all."""
    latencies: list[float] = []
    counter = {"sent": 0}

    async def client(offset: int) -> None:
        while counter["sent"] < total:
            counter["sent"] += 1
            text = texts[(counter["sent"] + offset) % len(texts)]
            started = time.perf_counter()
            status, _ = await _http_post(port, "/query", {"texts": [text], "k": 2})
            latencies.append(time.perf_counter() - started)
            if status != 200:
                raise RuntimeError(f"query leg got HTTP {status}")

    started = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(concurrency)))
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)

    def pct(fraction: float) -> float:
        rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
        return ordered[rank]

    return {
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 2),
        "p50_ms": round(pct(0.50) * 1e3, 3),
        "p99_ms": round(pct(0.99) * 1e3, 3),
    }


# -------------------------------------------------------------------- server
class _Server:
    def __init__(self, snapshot: str, coalesce: bool, workers: int = 2):
        args = [
            sys.executable, "-m", "repro.cli", "serve", snapshot,
            "--port", "0", "--workers", str(workers), "--max-wait-ms", "2",
            "--reload-poll-s", "0",
        ]
        if not coalesce:
            args.append("--no-coalesce")
        env = {**os.environ}
        env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            args, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"serve process died on boot:\n{self.proc.stderr.read()[-2000:]}"
            )
        self.port = json.loads(line)["port"]

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - drain overrun
            self.proc.kill()
            self.proc.wait(timeout=10)


def _build_snapshot(directory: str, dataset_name: str, profile: str) -> tuple[str, list[str]]:
    from repro.config import paper_default_config
    from repro.core.incremental import IncrementalMultiEM
    from repro.data.generators import load_benchmark
    from repro.data.serialization import serialize_table

    dataset = load_benchmark(dataset_name, profile=profile, seed=0)
    matcher = IncrementalMultiEM(paper_default_config(dataset.name))
    matcher.fit(dataset)
    path = os.path.join(directory, "serve_bench.snap")
    matcher.save(path)
    matcher.close()
    texts = serialize_table(dataset.table_list()[0], None, max_tokens=64)[:64]
    return path, texts


# --------------------------------------------------------------------- bench
def run_serve_bench(
    dataset_name: str = "music-20", profile: str = "tiny", repeats: int = 3
) -> dict:
    """Best-of-N closed-loop legs at each concurrency, coalescing on vs off."""
    requests_per_leg = 150 if profile == "tiny" else 600
    legs: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as scratch:
        snapshot, texts = _build_snapshot(scratch, dataset_name, profile)
        for coalesce in (True, False):
            server = _Server(snapshot, coalesce)
            try:
                for concurrency in CONCURRENCIES:
                    best: dict | None = None
                    for _ in range(max(repeats, 1)):
                        leg = asyncio.run(
                            _closed_loop(server.port, texts, concurrency, requests_per_leg)
                        )
                        if best is None or leg["throughput_rps"] > best["throughput_rps"]:
                            best = leg
                    legs[f"k{concurrency}_{'coalesced' if coalesce else 'solo'}"] = best
            finally:
                server.stop()
    record = {
        "kind": "serve_load",
        "dataset": dataset_name,
        "profile": profile,
        "backend": "serve",
        "workers": 2,
        "repeats": repeats,
        "requests_per_leg": requests_per_leg,
        "concurrencies": list(CONCURRENCIES),
        "legs": legs,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    for concurrency in CONCURRENCIES:
        solo = legs[f"k{concurrency}_solo"]["throughput_rps"]
        coalesced = legs[f"k{concurrency}_coalesced"]["throughput_rps"]
        record[f"coalesce_speedup_k{concurrency}"] = round(coalesced / solo, 3)
    return record


def test_bench_serve_load(bench_profile):
    """Coalescing on vs off at k ∈ {1, 8, 64} against the live server."""
    record = run_serve_bench("music-20", bench_profile, repeats=3)
    write_bench_record(record)
    for concurrency in CONCURRENCIES:
        on = record["legs"][f"k{concurrency}_coalesced"]
        off = record["legs"][f"k{concurrency}_solo"]
        print(
            f"\n  k={concurrency}: coalesced {on['throughput_rps']:.0f} rps "
            f"(p50 {on['p50_ms']:.1f}ms / p99 {on['p99_ms']:.1f}ms) vs solo "
            f"{off['throughput_rps']:.0f} rps (p50 {off['p50_ms']:.1f}ms / "
            f"p99 {off['p99_ms']:.1f}ms) — "
            f"{record[f'coalesce_speedup_k{concurrency}']:.2f}x"
        )
    assert record["legs"]["k64_coalesced"]["requests"] > 0
    # Correctness is pinned by tests/serve; here just require the coalesced
    # plane to not collapse under its widest concurrency.
    assert record["legs"]["k64_coalesced"]["throughput_rps"] > 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    profile = os.environ.get("REPRO_BENCH_PROFILE", "tiny")
    bench_record = run_serve_bench(profile=profile)
    write_bench_record(bench_record)
    print(json.dumps(bench_record, indent=2))
