"""Micro-benchmarks of the substrates MultiEM is built on.

Not a paper table, but useful for tracking the cost of the pieces Figure 5
aggregates: encoding, ANN index construction/query, and density pruning.
"""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, mutual_top_k
from repro.clustering import dbscan
from repro.data.generators import load_benchmark
from repro.data.serialization import serialize_table
from repro.embedding import HashedNGramEncoder


@pytest.fixture(scope="module")
def corpus(bench_profile):
    dataset = load_benchmark("music-20", profile=bench_profile)
    texts: list[str] = []
    for table in dataset.table_list():
        texts.extend(serialize_table(table))
    return texts


@pytest.fixture(scope="module")
def vectors(corpus):
    encoder = HashedNGramEncoder(dimension=256)
    encoder.fit(corpus)
    return encoder.encode(corpus)


def test_bench_encoding_throughput(benchmark, corpus):
    encoder = HashedNGramEncoder(dimension=256)
    encoder.fit(corpus)
    benchmark(lambda: encoder.encode(corpus))


def test_bench_brute_force_query(benchmark, vectors):
    index = BruteForceIndex().build(vectors)
    benchmark(lambda: index.query(vectors[:256], 5))


def test_bench_hnsw_build_and_query(benchmark, vectors):
    subset = vectors[:600]

    def build_and_query():
        index = HNSWIndex(ef_search=32, ef_construction=60, seed=0).build(subset)
        return index.query(subset[:64], 3)

    benchmark(build_and_query)


def test_bench_mutual_top_k(benchmark, vectors):
    half = len(vectors) // 2
    benchmark(lambda: mutual_top_k(vectors[:half], vectors[half:], k=1, max_distance=0.5))


def test_bench_dbscan_pruning(benchmark, vectors):
    rng = np.random.default_rng(0)
    sample = vectors[rng.choice(len(vectors), size=min(400, len(vectors)), replace=False)]
    benchmark(lambda: dbscan(sample, epsilon=1.0, min_pts=2))
