"""Micro-benchmarks of the substrates MultiEM is built on.

Not a paper table, but useful for tracking the cost of the pieces Figure 5
aggregates: encoding, ANN index construction/query, and density pruning.

``test_bench_hnsw_merge_at_scale`` is the headline number for the batched
ANN engine: the HNSW-backed mutual top-K merge over two tables of
``REPRO_BENCH_PROFILE``-dependent size (10k rows under ``bench``/``paper``).
Reference points on the 10k workload (64-d, near-duplicate pairs, fixed
seeds): the v0 dict-backed implementation took ~158 s; the array-backed
batched engine ~50 s (~3.2x); the runtime-compiled native kernel
(``repro/ann/native.py``) ~7.7 s (~20x over seed) — all three with
byte-identical pair output. ``test_bench_index_cache_extend_vs_rebuild``
measures the cross-level reuse path on top of that.
"""

import time

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, IndexCache, mutual_top_k
from repro.clustering import dbscan
from repro.data.generators import load_benchmark
from repro.data.serialization import serialize_table
from repro.embedding import HashedNGramEncoder

#: rows per side of the at-scale merging benchmarks, by profile.
MERGE_SCALE = {"tiny": 1500, "bench": 10_000, "paper": 10_000}


@pytest.fixture(scope="module")
def corpus(bench_profile):
    dataset = load_benchmark("music-20", profile=bench_profile)
    texts: list[str] = []
    for table in dataset.table_list():
        texts.extend(serialize_table(table))
    return texts


@pytest.fixture(scope="module")
def vectors(corpus):
    encoder = HashedNGramEncoder(dimension=256)
    encoder.fit(corpus)
    return encoder.encode(corpus)


def test_bench_encoding_throughput(benchmark, corpus):
    encoder = HashedNGramEncoder(dimension=256)
    encoder.fit(corpus)
    benchmark(lambda: encoder.encode(corpus))


def test_bench_brute_force_query(benchmark, vectors):
    index = BruteForceIndex().build(vectors)
    benchmark(lambda: index.query(vectors[:256], 5))


def test_bench_hnsw_build_and_query(benchmark, vectors):
    subset = vectors[:600]

    def build_and_query():
        index = HNSWIndex(ef_search=32, ef_construction=60, seed=0).build(subset)
        return index.query(subset[:64], 3)

    benchmark(build_and_query)


def test_bench_mutual_top_k(benchmark, vectors):
    half = len(vectors) // 2
    benchmark(lambda: mutual_top_k(vectors[:half], vectors[half:], k=1, max_distance=0.5))


def test_bench_dbscan_pruning(benchmark, vectors):
    rng = np.random.default_rng(0)
    sample = vectors[rng.choice(len(vectors), size=min(400, len(vectors)), replace=False)]
    benchmark(lambda: dbscan(sample, epsilon=1.0, min_pts=2))


@pytest.fixture(scope="module")
def merge_scale_vectors(bench_profile):
    """Two near-duplicate tables at the profile's merging scale."""
    n = MERGE_SCALE.get(bench_profile, MERGE_SCALE["tiny"])
    rng = np.random.default_rng(42)
    left = rng.normal(size=(n, 64)).astype(np.float32)
    right = left[rng.permutation(n)] + rng.normal(scale=0.01, size=(n, 64)).astype(np.float32)
    return left, right


def test_bench_hnsw_merge_at_scale(benchmark, merge_scale_vectors):
    """The merging stage's bottleneck: HNSW-backed mutual top-K at scale."""
    left, right = merge_scale_vectors

    def merge():
        return mutual_top_k(
            left, right, k=1, max_distance=0.3, backend="hnsw", index_kwargs={"seed": 0}
        )

    pairs = benchmark.pedantic(merge, rounds=1, iterations=1)
    print(f"\n  hnsw merge over 2x{len(left)} rows: {len(pairs)} mutual pairs")


def test_bench_index_cache_extend_vs_rebuild(merge_scale_vectors):
    """Cross-level reuse: extending a cached index vs rebuilding from scratch."""
    left, _ = merge_scale_vectors
    tail = np.ascontiguousarray(left[:64] + np.float32(0.25))
    grown = np.concatenate([left, tail])

    started = time.perf_counter()
    rebuilt = HNSWIndex(seed=0).build(grown)
    rebuild_seconds = time.perf_counter() - started

    cache = IndexCache(max_entries=2)
    cache.get_or_build(left, lambda: HNSWIndex(seed=0).build(left))
    started = time.perf_counter()
    extended = cache.get_or_build(grown, lambda: HNSWIndex(seed=0).build(grown))
    extend_seconds = time.perf_counter() - started

    assert cache.stats.prefix_hits == 1
    got, _ = extended.query(grown[:64], 3)
    want, _ = rebuilt.query(grown[:64], 3)
    assert np.array_equal(got, want)  # reuse is exact
    speedup = rebuild_seconds / max(extend_seconds, 1e-9)
    print(
        f"\n  rebuild {rebuild_seconds:.2f}s vs cached extend {extend_seconds:.3f}s "
        f"({speedup:.0f}x) over {len(grown)} rows"
    )
    assert extend_seconds < rebuild_seconds
