"""Table IV — matching effectiveness of MultiEM, its ablations, and all baselines."""

import pytest

from repro.evaluation import format_table
from repro.experiments import TABLE4_METHODS, run_matrix, table4_effectiveness


#: Subset of methods that stay fast at every profile; the full TABLE4_METHODS
#: list is used when the profile is "tiny" or when explicitly requested.
FAST_METHODS = (
    "AutoFJ (pw)",
    "AutoFJ (c)",
    "ALMSER-GB",
    "MSCD-HAC",
    "MultiEM",
    "MultiEM w/o EER",
    "MultiEM w/o DP",
)


@pytest.fixture(scope="module")
def table4_runs(bench_profile, bench_datasets):
    methods = TABLE4_METHODS if bench_profile == "tiny" else TABLE4_METHODS
    return run_matrix(methods, bench_datasets, profile=bench_profile)


def test_table4_effectiveness(benchmark, table4_runs, bench_profile, bench_datasets):
    """Regenerate Table IV and check its headline shape."""
    rows = table4_effectiveness(bench_datasets, runs=table4_runs)
    print("\n" + format_table(rows, title=f"Table IV (profile={bench_profile})"))

    by_cell = {(run.method, run.dataset): run for run in table4_runs}
    for dataset in bench_datasets:
        multiem = by_cell[("MultiEM", dataset)]
        assert multiem.status == "ok"
        assert multiem.report is not None and multiem.report.f1 > 0
        # Shape check: MultiEM beats every *unsupervised* baseline that ran.
        # The check is skipped for degenerate tiny datasets (a handful of rows
        # per source), where cubic clustering baselines have no scale handicap.
        if multiem.report.num_truth_tuples < 200:
            continue
        for method in ("AutoFJ (pw)", "AutoFJ (c)", "MSCD-HAC"):
            run = by_cell.get((method, dataset))
            if run is not None and run.status == "ok" and run.report is not None:
                assert multiem.report.pair_f1 >= run.report.pair_f1 - 5.0, (
                    f"MultiEM should not lose clearly to {method} on {dataset}"
                )

    benchmark(lambda: table4_effectiveness(bench_datasets, runs=table4_runs))
