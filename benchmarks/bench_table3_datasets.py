"""Table III — dataset statistics (generated vs paper)."""

from repro.data.generators import load_benchmark
from repro.evaluation import format_table
from repro.experiments import table3_dataset_statistics


def test_table3_dataset_statistics(benchmark, bench_profile, bench_datasets):
    """Regenerate Table III and benchmark dataset generation itself."""
    rows = table3_dataset_statistics(bench_datasets, profile=bench_profile)
    print("\n" + format_table(rows, title=f"Table III (profile={bench_profile})"))
    assert all(row["entities"] > 0 for row in rows)

    benchmark(lambda: load_benchmark(bench_datasets[0], profile=bench_profile))
