"""Table VI — peak-memory comparison."""

import pytest

from repro.evaluation import format_table
from repro.experiments import run_matrix, table6_memory

METHODS = ("AutoFJ (pw)", "ALMSER-GB", "MSCD-HAC", "MultiEM", "MultiEM (parallel)")


@pytest.fixture(scope="module")
def memory_runs(bench_profile, bench_datasets):
    return run_matrix(METHODS, bench_datasets, profile=bench_profile)


def test_table6_memory(benchmark, memory_runs, bench_profile, bench_datasets):
    """Regenerate Table VI; every successful run must report a non-zero peak."""
    rows = table6_memory(bench_datasets, METHODS, runs=memory_runs)
    print("\n" + format_table(rows, title=f"Table VI (profile={bench_profile})"))

    for run in memory_runs:
        if run.status == "ok":
            assert run.peak_memory_bytes > 0

    benchmark(lambda: table6_memory(bench_datasets, METHODS, runs=memory_runs))
